(* Parallel crash-to-ready recovery tests.

   Three layers:

   - a randomized recovery battery: a seeded SNB-shaped update mix is
     cut by a fault plan at crash points sampled uniformly from its
     persist trace (every 4th point with eviction/torn-line variants),
     then recovered with 1, 2 and 4 domains plus a lazy (instant-restart)
     pass that is forced fully warm; every recovery must satisfy the
     shared I1-I5 oracle from Crash_oracle AND rebuild exactly the state
     serial recovery rebuilds (fingerprint equality).  The sample size
     comes from RECOVERY_POINTS (default 24; the nightly sweep raises
     it);

   - golden B+-tree equivalence: a cleanly persisted tree, reattached
     from its leaf chain (both the one-shot rebuild and recovery's
     staged leaf_handles / read_leaf_info / build_from_leaf_infos
     pipeline), answers every point and range query exactly as the
     original - including the empty tree, a single leaf, and a leaf at
     exactly its fanout;

   - a differential engine check: a recovered store is indistinguishable
     from a never-crashed twin under the SNB short reads, in both
     interpreted and JIT execution. *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Faults = Pmem.Faults
module CE = Pmem.Crash_explorer
module Value = Storage.Value
module G = Storage.Graph_store
module Dict = Storage.Dict
module Mvto = Mvcc.Mvto
module Node_store = Gindex.Node_store
module Btree = Gindex.Btree
module Index = Gindex.Index
module Engine = Jit.Engine
module SR = Snb.Short_reads
module IU = Snb.Updates

let battery_points =
  match Sys.getenv_opt "RECOVERY_POINTS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 24)
  | None -> 24

(* --- randomized recovery battery ------------------------------------- *)

(* SNB-shaped workload with full model tracking, so Crash_oracle can
   audit recovery after a cut at any point.  Ops: IU1 insert-person,
   IU8 add-friendship, IU6 add-post (+hasCreator in the same txn), and
   person deletion (restricted to "loners" - persons that never gained a
   relationship - to keep the adjacency part of the model trivial). *)
type st = {
  mutable db : Core.t;
  model : Crash_oracle.model;
  mutable pending : Crash_oracle.delta option;
  mutable persons : int list; (* node ids, committed *)
  mutable loners : int list; (* persons with no incident rels *)
  mutable next_ldbc : int;
}

let fresh () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ~chunk_capacity:64 () in
  (* hybrid and persistent placements recover through different paths *)
  ignore (Core.create_index db ~label:"Person" ~prop:"id" ());
  ignore
    (Core.create_index ~placement:Node_store.Persistent db ~label:"Post"
       ~prop:"id" ());
  let person ldbc =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"Person" ~props:[ ("id", Value.Int ldbc) ])
  in
  let p1 = person 933 and p2 = person 1129 and p3 = person 4194 in
  {
    db;
    model =
      { Crash_oracle.nodes = [ (p1, 933); (p2, 1129); (p3, 4194) ]; rels = [] };
    pending = None;
    persons = [ p1; p2; p3 ];
    loners = [];
    next_ldbc = 10000;
  }

let step st pending f =
  st.pending <- Some pending;
  f ();
  st.pending <- None

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))
let used st p = st.loners <- List.filter (fun q -> q <> p) st.loners

let insert_person st =
  let ldbc = st.next_ldbc in
  st.next_ldbc <- st.next_ldbc + 1;
  step st (Crash_oracle.Insert { ldbc; v = ldbc; rel_dsts = [] }) (fun () ->
      let id =
        Core.with_txn st.db (fun txn ->
            Core.create_node st.db txn ~label:"Person"
              ~props:[ ("id", Value.Int ldbc) ])
      in
      st.model.Crash_oracle.nodes <- (id, ldbc) :: st.model.Crash_oracle.nodes;
      st.persons <- id :: st.persons;
      st.loners <- id :: st.loners)

let add_friendship st rng =
  let src = pick rng st.persons in
  let dst = pick rng (List.filter (fun p -> p <> src) st.persons) in
  step st (Crash_oracle.AddRels [ (src, dst) ]) (fun () ->
      let rid =
        Core.with_txn st.db (fun txn ->
            Core.create_rel st.db txn ~label:"knows" ~src ~dst ~props:[])
      in
      st.model.Crash_oracle.rels <- (rid, src, dst) :: st.model.Crash_oracle.rels;
      used st src;
      used st dst)

let add_post st rng =
  let creator = pick rng st.persons in
  let ldbc = st.next_ldbc in
  st.next_ldbc <- st.next_ldbc + 1;
  step st (Crash_oracle.Insert { ldbc; v = ldbc; rel_dsts = [ creator ] })
    (fun () ->
      let id, rid =
        Core.with_txn st.db (fun txn ->
            let id =
              Core.create_node st.db txn ~label:"Post"
                ~props:[ ("id", Value.Int ldbc) ]
            in
            let rid =
              Core.create_rel st.db txn ~label:"hasCreator" ~src:id ~dst:creator
                ~props:[]
            in
            (id, rid))
      in
      st.model.Crash_oracle.nodes <- (id, ldbc) :: st.model.Crash_oracle.nodes;
      st.model.Crash_oracle.rels <- (rid, id, creator) :: st.model.Crash_oracle.rels;
      used st creator)

let delete_loner st rng =
  match st.loners with
  | [] -> insert_person st
  | ls ->
      let node = pick rng ls in
      step st (Crash_oracle.Delete { node }) (fun () ->
          Core.with_txn st.db (fun txn -> Core.delete_node st.db txn node);
          st.model.Crash_oracle.nodes <-
            List.filter (fun (i, _) -> i <> node) st.model.Crash_oracle.nodes;
          st.persons <- List.filter (fun p -> p <> node) st.persons;
          used st node)

let run_mix st ~seed ~ops =
  let rng = Random.State.make [| seed; 0x5EC0 |] in
  for _ = 1 to ops do
    match Random.State.int rng 4 with
    | 0 -> insert_person st
    | 1 -> add_friendship st rng
    | 2 -> add_post st rng
    | _ -> delete_loner st rng
  done

(* Volatile-state fingerprint: equal fingerprints mean recovery rebuilt
   the same MVTO watermark, live records and index contents.  Computed
   before the oracle runs (its probe transactions mutate the store). *)
let state_signature db =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "ts=%d\n" (Mvto.next_ts (Core.mgr db)));
  Core.with_txn db (fun txn ->
      Mvto.scan_nodes (Core.mgr db) txn (fun id ->
          let v =
            match Core.node_prop db txn id ~key:"id" with
            | Some (Value.Int x) -> x
            | _ -> -1
          in
          Buffer.add_string buf (Printf.sprintf "n%d=%d\n" id v));
      Mvto.scan_rels (Core.mgr db) txn (fun rid ->
          Buffer.add_string buf (Printf.sprintf "r%d\n" rid)));
  let dict = G.dict (Core.store db) in
  List.iter
    (fun label ->
      match (Dict.lookup dict label, Dict.lookup dict "id") with
      | Some lc, Some kc -> (
          match Core.index_lookup_fn db ~label:lc ~key:kc with
          | None -> Buffer.add_string buf (Printf.sprintf "idx/%s=absent\n" label)
          | Some idx ->
              Btree.iter_all (Index.tree idx) (fun k v ->
                  Buffer.add_string buf
                    (Printf.sprintf "idx/%s/%Ld=%Ld\n" label k v)))
      | _ -> Buffer.add_string buf (Printf.sprintf "idx/%s=nocode\n" label))
    [ "Person"; "Post" ];
  Buffer.contents buf

let kind_name = function
  | `Write -> "store"
  | `Flush -> "clwb"
  | `Fence -> "sfence"

let test_random_battery () =
  let seed = 42 and ops = 12 in
  (* one clean run records the persist trace the sampler draws from *)
  let st0 = fresh () in
  let trace = CE.record (Core.media st0.db) (fun () -> run_mix st0 ~seed ~ops) in
  let ns = CE.stores trace
  and nf = CE.flushes trace
  and nfe = CE.fences trace in
  let total = ns + nf + nfe in
  Alcotest.(check bool) "persist trace nonempty" true (total > 0);
  let rng = Random.State.make [| seed; 0xBA77 |] in
  for point = 1 to battery_points do
    let j = Random.State.int rng total in
    let kind, ordinal =
      if j < ns then (`Write, j + 1)
      else if j < ns + nf then (`Flush, j - ns + 1)
      else (`Fence, j - ns - nf + 1)
    in
    (* the plan seed is shared across domain counts, so each recovers
       the exact same frozen (possibly evicted/torn) image *)
    let mk_plan () =
      if point mod 4 = 0 then
        Faults.plan ~crash_at:(kind, ordinal) ~evict_prob:0.5 ~torn_prob:0.25
          ~seed:(seed + (7919 * point))
          ()
      else Faults.plan ~crash_at:(kind, ordinal) ()
    in
    let outcomes =
      List.map
        (fun (threads, mode) ->
          let st = fresh () in
          let pool = Core.pool st.db and media = Core.media st.db in
          Faults.install ~pool media (mk_plan ());
          let fired =
            Fun.protect ~finally:(fun () -> Faults.uninstall media) @@ fun () ->
            match run_mix st ~seed ~ops with
            | () -> false
            | exception Faults.Crash_point _ -> true
          in
          Pool.crash pool;
          st.db <- Core.reopen ~recovery_threads:threads ~recovery_mode:mode st.db;
          if mode = Recovery.Lazy then Core.warm_all st.db;
          let s = state_signature st.db in
          (* I1-I5 *)
          Crash_oracle.check ~vkey:"id" ~index_label:"Person" ~index_key:"id"
            ?pending:st.pending st.db st.model;
          let label = Printf.sprintf "%d-domain %s" threads (Recovery.mode_name mode) in
          (label, fired, s))
        [ (1, Recovery.Eager); (2, Recovery.Eager); (4, Recovery.Eager);
          (1, Recovery.Lazy) ]
    in
    match outcomes with
    | [] -> ()
    | (n0, fired0, sig0) :: rest ->
        List.iter
          (fun (n, fired, s) ->
            Alcotest.(check bool)
              (Printf.sprintf "[seed=%d] point %d (%s #%d): fired agrees (%s vs %s)"
                 seed point (kind_name kind) ordinal n n0)
              fired0 fired;
            Alcotest.(check bool)
              (Printf.sprintf "[seed=%d] point %d (%s #%d): %s recovery == serial"
                 seed point (kind_name kind) ordinal n)
              true (s = sig0))
          rest
  done

(* --- golden B+-tree reattach equivalence ------------------------------ *)

let mk_tree_store placement =
  let media = Media.create () in
  let pool = Pool.create ~kind:`Pmem ~media ~id:0 ~size:(1 lsl 22) () in
  Pmem.Alloc.format pool;
  (pool, Node_store.make placement ~pool ~media)

let tree_dump t =
  let acc = ref [] in
  Btree.iter_all t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let range_dump t ~lo ~hi =
  let acc = ref [] in
  Btree.iter_range t ~lo ~hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

(* Build a tree from [pairs], persist it, power-cut the pool (a clean
   close: every leaf was persisted by the insert path), then reattach it
   both ways - the one-shot rebuild and recovery's staged pipeline - and
   require identical answers to every query the original answered. *)
let golden_case name pairs =
  let pool, store = mk_tree_store Node_store.Hybrid in
  let t = Btree.create store in
  List.iter (fun (k, v) -> Btree.insert t k v) pairs;
  let all = tree_dump t in
  let keys = List.sort_uniq compare (List.map fst pairs) in
  let point_answers = List.map (fun k -> (k, Btree.lookup t k)) keys in
  let windows =
    (Int64.min_int, Int64.max_int)
    :: (match keys with
       | [] -> []
       | ks ->
           let lo = List.hd ks and hi = List.nth ks (List.length ks - 1) in
           [ (lo, hi); (Int64.add lo 1L, Int64.sub hi 1L) ])
  in
  let range_answers =
    List.map (fun (lo, hi) -> ((lo, hi), range_dump t ~lo ~hi)) windows
  in
  let first_leaf = Btree.first_leaf t in
  Pool.crash pool;
  let check_rebuilt how t' =
    Btree.check_invariants t';
    Alcotest.(check int)
      (Printf.sprintf "%s/%s: count" name how)
      (List.length all) (Btree.count t');
    Alcotest.(check bool)
      (Printf.sprintf "%s/%s: full scan" name how)
      true
      (tree_dump t' = all);
    List.iter
      (fun (k, expect) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: point %Ld" name how k)
          true
          (Btree.lookup t' k = expect))
      point_answers;
    List.iter
      (fun ((lo, hi), expect) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: range [%Ld,%Ld]" name how lo hi)
          true
          (range_dump t' ~lo ~hi = expect))
      range_answers
  in
  let rebuilt, nleaves = Btree.rebuild_from_leaves store ~first_leaf in
  check_rebuilt "oneshot" rebuilt;
  let handles = Btree.leaf_handles store ~first_leaf in
  Alcotest.(check int)
    (Printf.sprintf "%s: staged walk sees every leaf" name)
    nleaves (Array.length handles);
  let infos = Array.map (Btree.read_leaf_info store) handles in
  check_rebuilt "staged" (Btree.build_from_leaf_infos store ~first_leaf infos)

let test_golden_empty () = golden_case "empty" []

let test_golden_single_leaf () =
  golden_case "single-leaf" (List.init 5 (fun i -> (Int64.of_int (i * 3), Int64.of_int i)))

let test_golden_leaf_exactly_full () =
  (* exactly [fanout] entries: one leaf on the brink of splitting *)
  golden_case "full-leaf"
    (List.init Node_store.fanout (fun i -> (Int64.of_int (i * 7), Int64.of_int i)))

let test_golden_multilevel_dups () =
  (* several inner levels, every key duplicated ~10x across leaves *)
  golden_case "multilevel-dups"
    (List.init 500 (fun i -> (Int64.of_int (i mod 50), Int64.of_int i)))

(* --- differential: recovered vs never-crashed ------------------------- *)

let snb_labels = [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ]

let mk_snb_db ~seed =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 25) ~chunk_capacity:256 () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = 0.01 }
      (Core.store db)
  in
  List.iter
    (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
    snb_labels;
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| seed; 0xD411 |] in
  let ctx = IU.make_ctx () in
  let nspec = List.length IU.all in
  for _ = 1 to 10 do
    let spec = List.nth IU.all (Random.State.int rng nspec) in
    let params = spec.IU.draw ds rng ctx in
    ignore (Core.execute_update db ~params (spec.IU.plan sc))
  done;
  (db, ds)

let norm rows = List.sort compare (List.map Array.to_list rows)

let test_differential_short_reads () =
  let seed = 42 in
  let live, ds = mk_snb_db ~seed in
  let crashed, _ = mk_snb_db ~seed in
  Core.crash crashed;
  let recovered = Core.reopen ~recovery_threads:2 crashed in
  let sc = ds.Snb.Gen.schema in
  let config =
    { Engine.default_config with prop_tag = Snb.Schema.prop_tag sc }
  in
  let rng = Random.State.make [| seed; 0xD1FF |] in
  List.iter
    (fun spec ->
      for _ = 1 to 3 do
        let param = SR.draw_param ds rng spec in
        List.iter
          (fun (mode_name, mode) ->
            let run db =
              List.concat_map
                (fun plan ->
                  fst (Core.query db ~mode ~config ~params:[| param |] plan))
                (spec.SR.plans ~access:`Index)
            in
            Alcotest.(check bool)
              (Printf.sprintf "[seed=%d] SR%s %s: recovered == live" seed
                 spec.SR.name mode_name)
              true
              (norm (run recovered) = norm (run live)))
          [ ("interp", Engine.Interp); ("jit", Engine.Jit) ]
      done)
    (SR.all sc)

let () =
  Alcotest.run "recovery"
    [
      ( "battery",
        [
          Alcotest.test_case
            (Printf.sprintf "randomized crash battery (%d points)" battery_points)
            `Slow test_random_battery;
        ] );
      ( "golden",
        [
          Alcotest.test_case "empty tree" `Quick test_golden_empty;
          Alcotest.test_case "single leaf" `Quick test_golden_single_leaf;
          Alcotest.test_case "leaf exactly full" `Quick
            test_golden_leaf_exactly_full;
          Alcotest.test_case "multi-level with duplicates" `Quick
            test_golden_multilevel_dups;
        ] );
      ( "differential",
        [
          Alcotest.test_case "short reads, interp and jit" `Slow
            test_differential_short_reads;
        ] );
    ]
