(* Crash-storm tests: random transactional workloads interrupted by power
   failures (with random cache-line eviction) at arbitrary points,
   followed by recovery and full invariant checking.

   The recovery invariants (I1-I5) live in Crash_oracle, shared with the
   exhaustive crash-schedule sweeps in test_faults.ml. *)

module Value = Storage.Value

type model = Crash_oracle.model = {
  mutable nodes : (int * int) list; (* node id, expected "v" prop *)
  mutable rels : (int * int * int) list; (* rel id, src, dst *)
}

let check_invariants db m = Crash_oracle.check db m

let run_storm ~seed ~steps ~evict () =
  let rng = Random.State.make [| seed |] in
  let db = ref (Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ()) in
  ignore (Core.create_index !db ~label:"N" ~prop:"id" ());
  let m = { nodes = []; rels = [] } in
  let next_ldbc = ref 0 in
  for _ = 1 to steps do
    match Random.State.int rng 100 with
    | r when r < 40 -> (
        (* committed insert (node, maybe + rel) *)
        let ldbc = !next_ldbc in
        incr next_ldbc;
        let v = Random.State.int rng 1000 in
        try
          let id, rel =
            Core.with_txn !db (fun txn ->
                let id =
                  Core.create_node !db txn ~label:"N"
                    ~props:[ ("id", Value.Int ldbc); ("v", Value.Int v) ]
                in
                let rel =
                  match m.nodes with
                  | (dst, _) :: _ ->
                      Some
                        ( Core.create_rel !db txn ~label:"E" ~src:id ~dst
                            ~props:[],
                          id,
                          dst )
                  | [] -> None
                in
                (id, rel))
          in
          m.nodes <- (id, v) :: m.nodes;
          match rel with
          | Some (rid, src, dst) -> m.rels <- (rid, src, dst) :: m.rels
          | None -> ()
        with Core.Abort _ -> ())
    | r when r < 55 -> (
        (* committed update *)
        match m.nodes with
        | [] -> ()
        | nodes -> (
            let i = Random.State.int rng (List.length nodes) in
            let id, _ = List.nth nodes i in
            let v = Random.State.int rng 1000 in
            try
              Core.with_txn !db (fun txn ->
                  Core.set_node_prop !db txn id ~key:"v" (Value.Int v));
              m.nodes <-
                List.map (fun (id', v') -> if id' = id then (id, v) else (id', v'))
                  m.nodes
            with Core.Abort _ -> ()))
    | r when r < 70 ->
        (* uncommitted work left in flight, then crash *)
        let txn = Core.begin_txn !db in
        (try
           ignore
             (Core.create_node !db txn ~label:"N"
                ~props:[ ("id", Value.Int 999_999); ("v", Value.Int 0) ]);
           match m.nodes with
           | (id, _) :: _ ->
               Core.set_node_prop !db txn id ~key:"v" (Value.Int (-1))
           | [] -> ()
         with Core.Abort _ -> ());
        Core.crash ~evict_prob:evict !db;
        db := Core.reopen !db;
        check_invariants !db m
    | _ ->
        (* clean crash between transactions *)
        Core.crash ~evict_prob:evict !db;
        db := Core.reopen !db;
        check_invariants !db m
  done;
  check_invariants !db m

let test_storm_no_eviction () = run_storm ~seed:1 ~steps:60 ~evict:0.0 ()
let test_storm_half_eviction () = run_storm ~seed:2 ~steps:60 ~evict:0.5 ()
let test_storm_full_eviction () = run_storm ~seed:3 ~steps:60 ~evict:1.0 ()

let test_storm_qcheck =
  QCheck.Test.make ~name:"crash storm (random seeds and eviction)" ~count:8
    QCheck.(pair (int_range 10 10_000) (int_range 0 100))
    (fun (seed, evict) ->
      run_storm ~seed ~steps:30 ~evict:(float_of_int evict /. 100.) ();
      true)

let () =
  Alcotest.run "crash"
    [
      ( "storm",
        [
          Alcotest.test_case "no eviction" `Quick test_storm_no_eviction;
          Alcotest.test_case "50% eviction" `Quick test_storm_half_eviction;
          Alcotest.test_case "100% eviction" `Quick test_storm_full_eviction;
          QCheck_alcotest.to_alcotest ~long:false test_storm_qcheck;
        ] );
    ]
