(* IR-level unit tests for the optimisation passes: each pass is checked
   for its specific transformation on hand-built functions, and for
   semantics preservation by executing before/after images. *)

module Ir = Jit.Ir
module Passes = Jit.Passes
module Emit = Jit.Emit
module Value = Storage.Value
open Tutil

let mk_func ?(nregs = 16) ?(nslots = 0) blocks : Ir.func =
  {
    Ir.blocks = Array.of_list blocks;
    entry = 0;
    nregs;
    nslots;
    loops = [];
  }

let block instrs term : Ir.block = { Ir.instrs; term }

(* run a function against a real (tiny) source and collect emitted rows *)
let exec env (f : Ir.func) =
  with_source env (fun g ->
      let rows = ref [] in
      let compiled = Emit.emit f in
      compiled.Emit.run
        {
          Emit.g;
          params = [||];
          sink = (fun r -> rows := r :: !rows);
          chunk_lo = 0;
          chunk_hi = -1;
          nchunks = g.Query.Source.node_chunks ();
          prof = None;
        };
      List.rev !rows)

let straightline () =
  (* r0 = 5; r1 = r0 + 7; r2 = (r1 = 12); emit r1, r2 *)
  mk_func
    [
      block
        [
          Ir.Move (0, Ir.Imm 5);
          Ir.Bin (Ir.Add, 1, Ir.Reg 0, Ir.Imm 7);
          Ir.Cmp (Ir.Ceq, 2, Ir.Reg 1, Ir.Imm 12);
          Ir.EmitRow [ (Ir.TagInt, Ir.Reg 1); (Ir.TagBool, Ir.Reg 2) ];
        ]
        Ir.Ret;
    ]

let test_combine_folds_constants () =
  let env = mk_env ~n:4 ~m:2 () in
  let f = straightline () in
  let expected = exec env f in
  Passes.combine f;
  (* the adds/cmps over constants are now Moves of immediates *)
  let folded =
    List.for_all
      (function Ir.Move _ | Ir.EmitRow _ -> true | _ -> false)
      f.Ir.blocks.(0).Ir.instrs
  in
  Alcotest.(check bool) "all ALU folded to moves" true folded;
  Alcotest.(check bool) "semantics preserved" true (exec env f = expected);
  (match expected with
  | [ [| Value.Int 12; Value.Bool true |] ] -> ()
  | _ -> Alcotest.fail "unexpected result")

let test_dce_drops_dead_pure () =
  let env = mk_env ~n:4 ~m:2 () in
  let f =
    mk_func
      [
        block
          [
            Ir.Move (0, Ir.Imm 1);
            Ir.Move (1, Ir.Imm 2) (* dead *);
            Ir.Bin (Ir.Add, 2, Ir.Reg 1, Ir.Imm 1) (* dead *);
            Ir.EmitRow [ (Ir.TagInt, Ir.Reg 0) ];
          ]
          Ir.Ret;
      ]
  in
  let expected = exec env f in
  Passes.dce f;
  Alcotest.(check int) "two instrs left" 2 (List.length f.Ir.blocks.(0).Ir.instrs);
  Alcotest.(check bool) "semantics" true (exec env f = expected)

let test_dce_keeps_impure () =
  let f =
    mk_func
      [
        block
          [
            Ir.Move (0, Ir.Imm 1);
            Ir.EmitRow [] (* impure: must stay even though it defines nothing *);
            Ir.SetNodeProp (Ir.Imm 0, 1, Ir.TagInt, Ir.Imm 5) (* impure *);
          ]
          Ir.Ret;
      ]
  in
  Passes.dce f;
  Alcotest.(check int) "emits kept, dead move dropped" 2
    (List.length f.Ir.blocks.(0).Ir.instrs)

let test_simplify_threads_empty_blocks () =
  (* entry -> empty -> empty -> target *)
  let f =
    mk_func
      [
        block [] (Ir.Br 1);
        block [] (Ir.Br 2);
        block [] (Ir.Br 3);
        block [ Ir.EmitRow [ (Ir.TagInt, Ir.Imm 7) ] ] Ir.Ret;
      ]
  in
  Passes.simplify_cfg f;
  Alcotest.(check int) "collapsed to one block" 1 (Array.length f.Ir.blocks);
  let env = mk_env ~n:4 ~m:2 () in
  Alcotest.(check bool) "still emits" true
    (exec env f = [ [| Value.Int 7 |] ])

let test_simplify_drops_unreachable () =
  let f =
    mk_func
      [
        block [] (Ir.CondBr (Ir.Imm 1, 1, 2));
        block [ Ir.EmitRow [ (Ir.TagInt, Ir.Imm 1) ] ] Ir.Ret;
        block [ Ir.EmitRow [ (Ir.TagInt, Ir.Imm 2) ] ] Ir.Ret;
      ]
  in
  (* fold the constant branch first, then drop the dead arm *)
  Passes.combine f;
  Passes.simplify_cfg f;
  Alcotest.(check int) "dead arm removed" 1 (Array.length f.Ir.blocks);
  let env = mk_env ~n:4 ~m:2 () in
  Alcotest.(check bool) "took the true arm" true
    (exec env f = [ [| Value.Int 1 |] ])

let test_mem2reg_roundtrip () =
  (* slot-based counting loop: slot0 = 0; while slot0 < 3 emit; slot0++ *)
  let f =
    mk_func ~nregs:8 ~nslots:1
      [
        block [ Ir.Store (0, Ir.Imm 0) ] (Ir.Br 1);
        block
          [ Ir.Load (0, 0); Ir.Cmp (Ir.Clt, 1, Ir.Reg 0, Ir.Imm 3) ]
          (Ir.CondBr (Ir.Reg 1, 2, 3));
        block
          [
            Ir.Load (2, 0);
            Ir.EmitRow [ (Ir.TagInt, Ir.Reg 2) ];
            Ir.Bin (Ir.Add, 3, Ir.Reg 2, Ir.Imm 1);
            Ir.Store (0, Ir.Reg 3);
          ]
          (Ir.Br 1);
        block [] Ir.Ret;
      ]
  in
  let env = mk_env ~n:4 ~m:2 () in
  let expected = exec env f in
  Alcotest.(check int) "loop emitted 3 rows" 3 (List.length expected);
  Passes.mem2reg f;
  Alcotest.(check int) "no slots left" 0 f.Ir.nslots;
  Array.iter
    (fun b ->
      List.iter
        (function
          | Ir.Load _ | Ir.Store _ -> Alcotest.fail "load/store survived"
          | _ -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  Alcotest.(check bool) "semantics across promotion" true (exec env f = expected);
  (* and the rest of the cascade keeps it working *)
  Passes.combine f;
  Passes.dce f;
  Passes.simplify_cfg f;
  Alcotest.(check bool) "semantics after full cascade" true (exec env f = expected)

let test_null_semantics_in_emitted_code () =
  (* null comparisons are falsy in branches, Not(null) is true *)
  let f =
    mk_func
      [
        block
          [ Ir.Move (0, Ir.Imm Ir.null_v); Ir.Not (1, Ir.Reg 0) ]
          (Ir.CondBr (Ir.Reg 0, 1, 2));
        block [ Ir.EmitRow [ (Ir.TagInt, Ir.Imm 111) ] ] Ir.Ret;
        block [ Ir.EmitRow [ (Ir.TagBool, Ir.Reg 1) ] ] Ir.Ret;
      ]
  in
  let env = mk_env ~n:4 ~m:2 () in
  Alcotest.(check bool) "null branch is false; not(null) = true" true
    (exec env f = [ [| Value.Bool true |] ])

let test_null_payload_boxes_to_null () =
  let f =
    mk_func
      [
        block
          [ Ir.EmitRow [ (Ir.TagInt, Ir.Imm Ir.null_v); (Ir.TagStr, Ir.Imm 3) ] ]
          Ir.Ret;
      ]
  in
  let env = mk_env ~n:4 ~m:2 () in
  Alcotest.(check bool) "null sentinel becomes Value.Null" true
    (exec env f = [ [| Value.Null; Value.Str 3 |] ])

let () =
  Alcotest.run "ir"
    [
      ( "passes",
        [
          Alcotest.test_case "combine folds constants" `Quick
            test_combine_folds_constants;
          Alcotest.test_case "dce drops dead pure" `Quick test_dce_drops_dead_pure;
          Alcotest.test_case "dce keeps impure" `Quick test_dce_keeps_impure;
          Alcotest.test_case "simplify threads empty blocks" `Quick
            test_simplify_threads_empty_blocks;
          Alcotest.test_case "simplify drops unreachable" `Quick
            test_simplify_drops_unreachable;
          Alcotest.test_case "mem2reg roundtrip" `Quick test_mem2reg_roundtrip;
        ] );
      ( "emit",
        [
          Alcotest.test_case "null semantics" `Quick test_null_semantics_in_emitted_code;
          Alcotest.test_case "null payload boxing" `Quick test_null_payload_boxes_to_null;
        ] );
    ]
