(* Checkpoint-targeted crash tests.

   Four layers:

   - a checkpoint crash battery: a seeded SNB-shaped update mix with a
     checkpoint in the middle is cut by a fault plan at crash points
     sampled from its persist trace — every third point forced INSIDE
     the checkpoint's own write window (epoch bump, blob persist, slot
     publication), so mid-checkpoint and between-stamp-and-commit tears
     are hit on every run.  Each point recovers four ways (serial eager,
     2-domain eager, lazy + warm, and eager with the checkpoint ignored)
     and every recovery must satisfy the I1-I5 oracle AND produce the
     same volatile-state fingerprint: checkpoint-accelerated, lazy and
     full-rebuild recovery are indistinguishable at every cut.  The
     sample size comes from CHECKPOINT_POINTS (default 24; the nightly
     sweep raises it);

   - an epoch/generation property test: N interleaved
     checkpoint / crash / reopen cycles; sequence numbers and the global
     epoch increase strictly monotonically, the two newest generations
     stay resident in the two shadow slots, and recovery never loads a
     generation older than the last committed one;

   - deterministic mid-checkpoint crashes: cut at the first store, the
     last store and mid-window of a checkpoint's own persist trace; the
     loader must still yield a valid generation (the previous one, or
     the new one when the cut landed after the commit flip) and the
     recovered state must equal a full rebuild;

   - a tampering drill: a corrupted blob makes the loader fall back to
     the older generation; corrupting both commit words makes it load
     nothing — and the engine still recovers by full rebuild. *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Faults = Pmem.Faults
module CE = Pmem.Crash_explorer
module Value = Storage.Value
module G = Storage.Graph_store
module Dict = Storage.Dict
module Table = Storage.Table
module Props = Storage.Props
module Mvto = Mvcc.Mvto
module Node_store = Gindex.Node_store
module Btree = Gindex.Btree
module Index = Gindex.Index
module Ckpt = Checkpoint

let battery_points =
  match Sys.getenv_opt "CHECKPOINT_POINTS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 24)
  | None -> 24

(* --- workload (SNB-shaped, model-tracked for Crash_oracle) ------------ *)

(* Same shape as the recovery battery's mix, plus a volatile-placement
   Comment index so all three snapshot encodings (hybrid leaf summaries,
   persistent leaf summaries, volatile pair sets) are exercised. *)
type st = {
  mutable db : Core.t;
  model : Crash_oracle.model;
  mutable pending : Crash_oracle.delta option;
  mutable persons : int list;
  mutable loners : int list;
  mutable next_ldbc : int;
}

let fresh () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ~chunk_capacity:64 () in
  ignore (Core.create_index db ~label:"Person" ~prop:"id" ());
  ignore
    (Core.create_index ~placement:Node_store.Persistent db ~label:"Post"
       ~prop:"id" ());
  ignore
    (Core.create_index ~placement:Node_store.Volatile db ~label:"Comment"
       ~prop:"id" ());
  let person ldbc =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"Person" ~props:[ ("id", Value.Int ldbc) ])
  in
  let p1 = person 933 and p2 = person 1129 and p3 = person 4194 in
  {
    db;
    model =
      { Crash_oracle.nodes = [ (p1, 933); (p2, 1129); (p3, 4194) ]; rels = [] };
    pending = None;
    persons = [ p1; p2; p3 ];
    loners = [];
    next_ldbc = 10000;
  }

let step st pending f =
  st.pending <- Some pending;
  f ();
  st.pending <- None

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))
let used st p = st.loners <- List.filter (fun q -> q <> p) st.loners

let insert_person st =
  let ldbc = st.next_ldbc in
  st.next_ldbc <- st.next_ldbc + 1;
  step st (Crash_oracle.Insert { ldbc; v = ldbc; rel_dsts = [] }) (fun () ->
      let id =
        Core.with_txn st.db (fun txn ->
            Core.create_node st.db txn ~label:"Person"
              ~props:[ ("id", Value.Int ldbc) ])
      in
      st.model.Crash_oracle.nodes <- (id, ldbc) :: st.model.Crash_oracle.nodes;
      st.persons <- id :: st.persons;
      st.loners <- id :: st.loners)

let add_friendship st rng =
  let src = pick rng st.persons in
  let dst = pick rng (List.filter (fun p -> p <> src) st.persons) in
  step st (Crash_oracle.AddRels [ (src, dst) ]) (fun () ->
      let rid =
        Core.with_txn st.db (fun txn ->
            Core.create_rel st.db txn ~label:"knows" ~src ~dst ~props:[])
      in
      st.model.Crash_oracle.rels <- (rid, src, dst) :: st.model.Crash_oracle.rels;
      used st src;
      used st dst)

let add_content st rng ~label =
  let creator = pick rng st.persons in
  let ldbc = st.next_ldbc in
  st.next_ldbc <- st.next_ldbc + 1;
  step st (Crash_oracle.Insert { ldbc; v = ldbc; rel_dsts = [ creator ] })
    (fun () ->
      let id, rid =
        Core.with_txn st.db (fun txn ->
            let id =
              Core.create_node st.db txn ~label
                ~props:[ ("id", Value.Int ldbc) ]
            in
            let rid =
              Core.create_rel st.db txn ~label:"hasCreator" ~src:id ~dst:creator
                ~props:[]
            in
            (id, rid))
      in
      st.model.Crash_oracle.nodes <- (id, ldbc) :: st.model.Crash_oracle.nodes;
      st.model.Crash_oracle.rels <- (rid, id, creator) :: st.model.Crash_oracle.rels;
      used st creator)

let delete_loner st rng =
  match st.loners with
  | [] -> insert_person st
  | ls ->
      let node = pick rng ls in
      step st (Crash_oracle.Delete { node }) (fun () ->
          Core.with_txn st.db (fun txn -> Core.delete_node st.db txn node);
          st.model.Crash_oracle.nodes <-
            List.filter (fun (i, _) -> i <> node) st.model.Crash_oracle.nodes;
          st.persons <- List.filter (fun p -> p <> node) st.persons;
          used st node)

let run_mix st ~seed ~ops =
  let rng = Random.State.make [| seed; 0xC4E7 |] in
  for _ = 1 to ops do
    match Random.State.int rng 5 with
    | 0 -> insert_person st
    | 1 -> add_friendship st rng
    | 2 -> add_content st rng ~label:"Post"
    | 3 -> add_content st rng ~label:"Comment"
    | _ -> delete_loner st rng
  done

(* Volatile-state fingerprint, covering everything the checkpoint
   snapshots: MVTO timestamps, live records, per-table free-slot lists,
   the dictionary and every index's full contents.  Reading it warms any
   still-cold lazy structure, so it is also the lazy==eager probe. *)
let state_signature db =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "ts=%d\n" (Mvto.next_ts (Core.mgr db)));
  Core.with_txn db (fun txn ->
      Mvto.scan_nodes (Core.mgr db) txn (fun id ->
          let v =
            match Core.node_prop db txn id ~key:"id" with
            | Some (Value.Int x) -> x
            | _ -> -1
          in
          Buffer.add_string buf (Printf.sprintf "n%d=%d\n" id v));
      Mvto.scan_rels (Core.mgr db) txn (fun rid ->
          Buffer.add_string buf (Printf.sprintf "r%d\n" rid)));
  let store = Core.store db in
  List.iter
    (fun (name, tbl) ->
      Buffer.add_string buf
        (Printf.sprintf "free/%s=%s\n" name
           (String.concat ","
              (List.map string_of_int (Table.free_slots tbl)))))
    [
      ("nodes", G.node_table store);
      ("rels", G.rel_table store);
      ("props", Props.table (G.prop_store store));
    ];
  let dict = G.dict store in
  Buffer.add_string buf (Printf.sprintf "dict/count=%d\n" (Dict.count dict));
  List.iter
    (fun label ->
      match (Dict.lookup dict label, Dict.lookup dict "id") with
      | Some lc, Some kc -> (
          match Core.index_lookup_fn db ~label:lc ~key:kc with
          | None -> Buffer.add_string buf (Printf.sprintf "idx/%s=absent\n" label)
          | Some idx ->
              Btree.iter_all (Index.tree idx) (fun k v ->
                  Buffer.add_string buf
                    (Printf.sprintf "idx/%s/%Ld=%Ld\n" label k v)))
      | _ -> Buffer.add_string buf (Printf.sprintf "idx/%s=nocode\n" label))
    [ "Person"; "Post"; "Comment" ];
  Buffer.contents buf

let kind_name = function
  | `Write -> "store"
  | `Flush -> "clwb"
  | `Fence -> "sfence"
  | _ -> "event"

(* --- checkpoint crash battery ----------------------------------------- *)

let ops1 = 8 and ops2 = 8

let run_ckpt_mix st ~seed =
  run_mix st ~seed ~ops:ops1;
  ignore (Core.checkpoint st.db);
  run_mix st ~seed:(seed + 1) ~ops:ops2

type variant = Eager of int | Lazy | No_ckpt

let variant_name = function
  | Eager n -> Printf.sprintf "eager/%d-domain" n
  | Lazy -> "lazy"
  | No_ckpt -> "eager/no-checkpoint"

let battery_variants = [ Eager 1; Eager 2; Lazy; No_ckpt ]

(* One crash/recover cycle: replay the deterministic mix under [plan],
   cut power, recover per [variant]; returns whether the plan fired plus
   the fingerprint (computed after warming, before the oracle's probe
   transactions mutate the store). *)
let battery_run ~seed ~plan variant =
  let st = fresh () in
  let pool = Core.pool st.db and media = Core.media st.db in
  Faults.install ~pool media plan;
  let fired =
    Fun.protect ~finally:(fun () -> Faults.uninstall media) @@ fun () ->
    match run_ckpt_mix st ~seed with
    | () -> false
    | exception Faults.Crash_point _ -> true
  in
  Pool.crash pool;
  (st.db <-
     (match variant with
     | Eager n -> Core.reopen ~recovery_threads:n st.db
     | No_ckpt -> Core.reopen ~use_checkpoint:false st.db
     | Lazy ->
         let db = Core.reopen ~recovery_mode:Recovery.Lazy st.db in
         (* organic first touches while structures are still cold *)
         (match
            ( Dict.lookup (G.dict (Core.store db)) "Person",
              Dict.lookup (G.dict (Core.store db)) "id" )
          with
         | Some lc, Some kc -> (
             match Core.index_lookup_fn db ~label:lc ~key:kc with
             | Some idx -> ignore (Index.lookup idx (Value.Int 933))
             | None -> ())
         | _ -> ());
         Core.warm_all db;
         db));
  let s = state_signature st.db in
  Crash_oracle.check ~vkey:"id" ~index_label:"Person" ~index_key:"id"
    ?pending:st.pending st.db st.model;
  (fired, s)

let test_checkpoint_battery () =
  let seed = 42 in
  (* record the persist trace in three segments — pre-checkpoint mix,
     the checkpoint itself, post-checkpoint mix — so the sampler can aim
     points specifically at the checkpoint's own write window *)
  let st0 = fresh () in
  let media0 = Core.media st0.db in
  let t1 = CE.record media0 (fun () -> run_mix st0 ~seed ~ops:ops1) in
  let t2 = CE.record media0 (fun () -> ignore (Core.checkpoint st0.db)) in
  let t3 = CE.record media0 (fun () -> run_mix st0 ~seed:(seed + 1) ~ops:ops2) in
  let s1 = CE.stores t1 and f1 = CE.flushes t1 and e1 = CE.fences t1 in
  let s2 = CE.stores t2 and f2 = CE.flushes t2 and e2 = CE.fences t2 in
  let s3 = CE.stores t3 and f3 = CE.flushes t3 and e3 = CE.fences t3 in
  Alcotest.(check bool) "checkpoint produced persist traffic" true (s2 > 0);
  let all = s1 + s2 + s3 + f1 + f2 + f3 + e1 + e2 + e3 in
  let ck = s2 + f2 + e2 in
  let rng = Random.State.make [| seed; 0xCB47 |] in
  (* map a flat draw over (stores, flushes, fences) with the given
     per-kind offsets into a global (kind, 1-based ordinal) crash point *)
  let to_point ~offs:(os, off, oe) ~counts:(cs, cf, _) j =
    if j < cs then (`Write, os + j + 1)
    else if j < cs + cf then (`Flush, off + j - cs + 1)
    else (`Fence, oe + j - cs - cf + 1)
  in
  for point = 1 to battery_points do
    let kind, ordinal =
      if point = 1 then
        (* first store of the checkpoint window: the epoch bump itself *)
        (`Write, s1 + 1)
      else if point = 2 then
        (* last store of the window: the slot commit flip *)
        (`Write, s1 + s2)
      else if point mod 3 = 0 then
        (* forced mid-checkpoint: epoch stamped, data partially persisted *)
        to_point
          ~offs:(s1, f1, e1)
          ~counts:(s2, f2, e2)
          (Random.State.int rng ck)
      else
        to_point ~offs:(0, 0, 0)
          ~counts:(s1 + s2 + s3, f1 + f2 + f3, e1 + e2 + e3)
          (Random.State.int rng all)
    in
    (* the plan seed is shared across variants, so each recovers the
       exact same frozen (possibly evicted/torn) image *)
    let mk_plan () =
      if point mod 4 = 0 then
        Faults.plan ~crash_at:(kind, ordinal) ~evict_prob:0.5 ~torn_prob:0.25
          ~seed:(seed + (6553 * point))
          ()
      else Faults.plan ~crash_at:(kind, ordinal) ()
    in
    let outcomes =
      List.map
        (fun v -> (v, battery_run ~seed ~plan:(mk_plan ()) v))
        battery_variants
    in
    match outcomes with
    | [] -> ()
    | (v0, (fired0, sig0)) :: rest ->
        List.iter
          (fun (v, (fired, s)) ->
            Alcotest.(check bool)
              (Printf.sprintf
                 "[seed=%d] point %d (%s #%d): fired agrees (%s vs %s)" seed
                 point (kind_name kind) ordinal (variant_name v)
                 (variant_name v0))
              fired0 fired;
            Alcotest.(check bool)
              (Printf.sprintf "[seed=%d] point %d (%s #%d): %s recovery == %s"
                 seed point (kind_name kind) ordinal (variant_name v)
                 (variant_name v0))
              true (s = sig0))
          rest
  done

(* --- epoch monotonicity + generation flipping -------------------------- *)

let cycles = 8

let test_generations () =
  let st = fresh () in
  let last_seq = ref 0 and last_epoch = ref 0 in
  for cycle = 1 to cycles do
    run_mix st ~seed:(100 + cycle) ~ops:5;
    let seq = Core.checkpoint st.db in
    let ep = Core.checkpoint_epoch st.db in
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d: sequence strictly increases" cycle)
      true (seq > !last_seq);
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d: epoch strictly increases" cycle)
      true (ep > !last_epoch);
    (match Core.checkpoint_info st.db with
    | None -> Alcotest.fail "no checkpoint region after take"
    | Some i ->
        Alcotest.(check int)
          (Printf.sprintf "cycle %d: info epoch" cycle)
          ep i.Ckpt.i_epoch;
        let valid =
          List.filter
            (fun s -> s.Ckpt.si_valid)
            (Array.to_list i.Ckpt.i_slots)
        in
        Alcotest.(check bool)
          (Printf.sprintf "cycle %d: newest valid slot is this generation"
             cycle)
          true
          (List.exists (fun s -> s.Ckpt.si_seq = seq) valid);
        if cycle >= 2 then
          Alcotest.(check int)
            (Printf.sprintf
               "cycle %d: both shadow slots hold valid generations" cycle)
            2 (List.length valid));
    last_seq := seq;
    last_epoch := ep;
    (* crash / reopen with a rotating strategy; a reopen must never load
       a generation older than the one just committed *)
    Core.crash st.db;
    st.db <-
      (match cycle mod 3 with
      | 0 -> Core.reopen ~recovery_threads:2 st.db
      | 1 -> Core.reopen st.db
      | _ ->
          let db = Core.reopen ~recovery_mode:Recovery.Lazy st.db in
          Core.warm_all db;
          db);
    (match Ckpt.load (Core.pool st.db) with
    | None -> Alcotest.fail "generation lost across crash/reopen"
    | Some g ->
        Alcotest.(check int)
          (Printf.sprintf "cycle %d: loads exactly the last generation" cycle)
          !last_seq g.Ckpt.g_seq);
    Crash_oracle.check ~vkey:"id" ~index_label:"Person" ~index_key:"id"
      ?pending:st.pending st.db st.model
  done

(* --- deterministic mid-checkpoint crashes ------------------------------ *)

(* Replay the deterministic prefix (mix, checkpoint, mix), install [plan]
   just before a SECOND checkpoint and let it cut power inside it; the
   recovered pool must still present a valid generation — the first one,
   or the second when the cut landed after the commit flip — and recover
   to full-rebuild state. *)
let midckpt_run ~plan variant =
  let st = fresh () in
  run_mix st ~seed:5 ~ops:6;
  let seq1 = Core.checkpoint st.db in
  run_mix st ~seed:6 ~ops:4;
  let pool = Core.pool st.db and media = Core.media st.db in
  Faults.install ~pool media plan;
  let fired =
    Fun.protect ~finally:(fun () -> Faults.uninstall media) @@ fun () ->
    match ignore (Core.checkpoint st.db) with
    | () -> false
    | exception Faults.Crash_point _ -> true
  in
  Pool.crash pool;
  (st.db <-
     (match variant with
     | Eager n -> Core.reopen ~recovery_threads:n st.db
     | No_ckpt -> Core.reopen ~use_checkpoint:false st.db
     | Lazy ->
         let db = Core.reopen ~recovery_mode:Recovery.Lazy st.db in
         Core.warm_all db;
         db));
  let loaded =
    match Ckpt.load (Core.pool st.db) with
    | None -> Alcotest.fail "mid-checkpoint crash left no valid generation"
    | Some g -> g.Ckpt.g_seq
  in
  Alcotest.(check bool)
    "mid-checkpoint crash: loaded generation is gen1 or gen2, never older"
    true
    (loaded = seq1 || loaded = seq1 + 1);
  let s = state_signature st.db in
  Crash_oracle.check ~vkey:"id" ~index_label:"Person" ~index_key:"id"
    ?pending:st.pending st.db st.model;
  (fired, s)

let test_midckpt_crashes () =
  (* trace just the second checkpoint, on an identical deterministic
     prefix, to learn its event counts *)
  let st0 = fresh () in
  run_mix st0 ~seed:5 ~ops:6;
  ignore (Core.checkpoint st0.db);
  run_mix st0 ~seed:6 ~ops:4;
  let t = CE.record (Core.media st0.db) (fun () -> ignore (Core.checkpoint st0.db)) in
  let ns = CE.stores t and nf = CE.flushes t and nfe = CE.fences t in
  Alcotest.(check bool) "second checkpoint persists something" true (ns > 0);
  let cuts =
    List.filter
      (fun (_, o) -> o > 0)
      [
        (`Write, 1);            (* the epoch bump store *)
        (`Write, (ns / 2) + 1); (* mid blob write *)
        (`Write, ns);           (* the commit-word flip *)
        (`Flush, nf);
        (`Fence, nfe);
      ]
  in
  List.iter
    (fun (kind, ordinal) ->
      let mk_plan () = Faults.plan ~crash_at:(kind, ordinal) () in
      let outcomes =
        List.map
          (fun v -> (v, midckpt_run ~plan:(mk_plan ()) v))
          [ Eager 1; Lazy; No_ckpt ]
      in
      match outcomes with
      | [] -> ()
      | (v0, (fired0, sig0)) :: rest ->
          Alcotest.(check bool)
            (Printf.sprintf "cut %s #%d fired inside the checkpoint"
               (kind_name kind) ordinal)
            true fired0;
          List.iter
            (fun (v, (fired, s)) ->
              Alcotest.(check bool)
                (Printf.sprintf "cut %s #%d: fired agrees (%s)"
                   (kind_name kind) ordinal (variant_name v))
                fired0 fired;
              Alcotest.(check bool)
                (Printf.sprintf "cut %s #%d: %s recovery == %s"
                   (kind_name kind) ordinal (variant_name v)
                   (variant_name v0))
                true (s = sig0))
            rest)
    cuts

(* --- stale / tampered generations are rejected ------------------------- *)

(* Shadow-slot layout mirrored from lib/checkpoint (region header 192 B:
   two 64-byte slots at +64/+128; blob_off at slot+32, blob_len at
   slot+40, commit word at slot+56). *)
let slot_offs = [ 64; 128 ]
let f_seq = 0 and f_blob_off = 32 and f_blob_len = 40 and f_commit = 56

let test_tampering () =
  let st = fresh () in
  run_mix st ~seed:9 ~ops:8;
  let seq1 = Core.checkpoint st.db in
  run_mix st ~seed:10 ~ops:3;
  let seq2 = Core.checkpoint st.db in
  let pool = Core.pool st.db in
  let region = Ckpt.region pool in
  Alcotest.(check bool) "checkpoint region exists" true (region <> 0);
  (* find the slot holding the newest generation and flip one byte in
     the middle of its blob: the loader must reject it on checksum and
     fall back to the older generation *)
  let newest =
    List.find
      (fun off -> Pool.raw_read_int pool (region + off + f_seq) = seq2)
      slot_offs
  in
  let blob_off = Pool.raw_read_int pool (region + newest + f_blob_off) in
  let blob_len = Pool.raw_read_int pool (region + newest + f_blob_len) in
  Alcotest.(check bool) "newest blob nonempty" true (blob_len > 0);
  let target = blob_off + (blob_len / 2) in
  let b = Bytes.get (Pool.read_bytes pool target 1) 0 in
  Pool.write_u8 pool target (Char.code b lxor 0xFF);
  Pool.persist pool ~off:target ~len:1;
  (match Ckpt.load pool with
  | None -> Alcotest.fail "corrupt blob: loader must fall back, not fail"
  | Some g ->
      Alcotest.(check int) "corrupt blob falls back to the older generation"
        seq1 g.Ckpt.g_seq);
  (* now kill both commit words: no generation may load at all *)
  List.iter
    (fun off ->
      Pool.write_i64 pool (region + off + f_commit) 0L;
      Pool.persist pool ~off:(region + off + f_commit) ~len:8)
    slot_offs;
  Alcotest.(check bool) "no valid generation after commit-word wipe" true
    (Ckpt.load pool = None);
  (match Ckpt.info pool with
  | None -> Alcotest.fail "region header still present"
  | Some i ->
      Alcotest.(check int) "info shows zero valid slots" 0
        (Array.fold_left
           (fun n s -> if s.Ckpt.si_valid then n + 1 else n)
           0 i.Ckpt.i_slots));
  (* the engine still recovers — by full rebuild — and matches a twin
     whose (uncorrupted) checkpoint was simply ignored *)
  Core.crash st.db;
  st.db <- Core.reopen st.db;
  let s = state_signature st.db in
  Crash_oracle.check ~vkey:"id" ~index_label:"Person" ~index_key:"id"
    ?pending:st.pending st.db st.model;
  let twin = fresh () in
  run_mix twin ~seed:9 ~ops:8;
  ignore (Core.checkpoint twin.db);
  run_mix twin ~seed:10 ~ops:3;
  ignore (Core.checkpoint twin.db);
  Core.crash twin.db;
  twin.db <- Core.reopen ~use_checkpoint:false twin.db;
  Alcotest.(check bool) "full rebuild after tamper == checkpoint-ignored twin"
    true
    (state_signature twin.db = s)

(* --- stale checkpoint differential ------------------------------------- *)

(* Mutations after the last checkpoint dirty chunks, the dict and index
   stamps; recovery must re-derive those parts rather than trust the
   stale snapshot.  Differential: recover the same frozen image with the
   checkpoint enabled and disabled — identical fingerprints. *)
let test_stale_checkpoint () =
  let run variant =
    let st = fresh () in
    run_mix st ~seed:21 ~ops:8;
    ignore (Core.checkpoint st.db);
    (* everything below postdates the snapshot *)
    run_mix st ~seed:22 ~ops:10;
    Core.crash st.db;
    (st.db <-
       (match variant with
       | Eager n -> Core.reopen ~recovery_threads:n st.db
       | No_ckpt -> Core.reopen ~use_checkpoint:false st.db
       | Lazy ->
           let db = Core.reopen ~recovery_mode:Recovery.Lazy st.db in
           Core.warm_all db;
           db));
    let s = state_signature st.db in
    Crash_oracle.check ~vkey:"id" ~index_label:"Person" ~index_key:"id"
      ?pending:st.pending st.db st.model;
    s
  in
  let base = run No_ckpt in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "stale checkpoint not trusted (%s)" (variant_name v))
        true
        (run v = base))
    [ Eager 1; Eager 2; Lazy ]

let () =
  Alcotest.run "checkpoint"
    [
      ( "battery",
        [
          Alcotest.test_case
            (Printf.sprintf "checkpoint crash battery (%d points)"
               battery_points)
            `Slow test_checkpoint_battery;
        ] );
      ( "generations",
        [
          Alcotest.test_case "epoch monotonicity + generation flipping" `Slow
            test_generations;
          Alcotest.test_case "deterministic mid-checkpoint crashes" `Slow
            test_midckpt_crashes;
          Alcotest.test_case "tampered generations are rejected" `Quick
            test_tampering;
          Alcotest.test_case "stale checkpoint is re-derived, not trusted"
            `Quick test_stale_checkpoint;
        ] );
    ]
