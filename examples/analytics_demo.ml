(* Analytics subsystem demo (paper Section 8: "we plan to investigate
   the behavior of complex graph analytics"): export a snapshot-
   consistent CSR while IU8 friendship updates keep committing, then run
   the morsel-parallel BFS / PageRank / WCC kernels and check them
   against their serial references.  Exits non-zero on any mismatch, so
   this doubles as a smoke check.

   dune exec examples/analytics_demo.exe *)

module Value = Storage.Value
module Csr = Analytics.Csr
module Kernels = Analytics.Kernels
module Task_pool = Exec.Task_pool

let () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 27) ~chunk_capacity:256 () in
  let ds =
    Snb.Gen.generate ~params:{ Snb.Gen.default_params with sf = 0.5 } (Core.store db)
  in
  let sc = ds.Snb.Gen.schema in
  (* the concurrent update stream looks its endpoints up by id *)
  ignore (Core.create_index db ~label:"Person" ~prop:"id" ());
  let media = Core.media db and mgr = Core.mgr db in
  ignore (Pmem.Media.install_meter media);
  Printf.printf "SNB graph: %d nodes, %d rels\n" (Core.node_count db)
    (Core.rel_count db);

  (* a long-running analytical snapshot *)
  let txn = Core.begin_txn db in

  (* concurrent IU8 (add friendship) transactions must not disturb it *)
  let writer =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| 9 |] in
        let ctx = Snb.Updates.make_ctx () in
        let iu8 = List.nth Snb.Updates.all 7 in
        let committed = ref 0 in
        for _ = 1 to 50 do
          let params = iu8.Snb.Updates.draw ds rng ctx in
          try
            ignore (Core.execute_update db ~params (iu8.Snb.Updates.plan sc));
            incr committed
          with Core.Abort _ -> ()
        done;
        !committed)
  in

  let pool = Task_pool.create ~media ~nworkers:2 () in
  let sw = Analytics.Par.stopwatch media (Some pool) in
  let csr = Csr.export ~pool mgr txn in
  let export_ns = sw () in
  let committed = Domain.join writer in
  Printf.printf "exported %s under %d concurrent commits (%d sim-ns)\n"
    (Format.asprintf "%a" Csr.pp_stats csr)
    committed export_ns;

  (* the snapshot is frozen: a quiesced re-export under the same
     transaction is bitwise identical *)
  let quiesced = Csr.export mgr txn in
  let snapshot_ok =
    Csr.equal csr quiesced && Csr.fingerprint csr = Csr.fingerprint quiesced
  in
  Printf.printf "snapshot stable under writers: %b\n" snapshot_ok;

  (* kernels, parallel vs serial references *)
  let source = Option.get (Csr.index_of_node csr ds.Snb.Gen.persons.(0)) in
  let bfs = Kernels.bfs ~pool media csr ~source in
  let bfs_ok = Kernels.bfs_reference csr ~source = bfs.Kernels.levels in
  let reached =
    Array.fold_left (fun a l -> if l >= 0 then a + 1 else a) 0 bfs.Kernels.levels
  in
  Printf.printf "bfs: %d rounds, reached %d/%d (reference match: %b)\n"
    bfs.Kernels.bfs_rounds reached csr.Csr.n bfs_ok;

  let pr = Kernels.pagerank ~pool media csr in
  let ref_ranks, _ = Kernels.pagerank_reference csr in
  let rank_delta =
    let d = ref 0. in
    Array.iteri
      (fun v r -> d := Float.max !d (abs_float (r -. pr.Kernels.ranks.(v))))
      ref_ranks;
    !d
  in
  let pr_ok = rank_delta <= 1e-9 in
  Printf.printf "pagerank: %d iterations, residual %.2e, max delta %.2e (%b)\n"
    pr.Kernels.pr_iterations pr.Kernels.pr_residual rank_delta pr_ok;
  let ranked =
    Array.mapi (fun v r -> (r, csr.Csr.vertices.(v))) pr.Kernels.ranks
  in
  Array.sort (fun (a, _) (b, _) -> compare b a) ranked;
  print_endline "top-5 nodes by PageRank:";
  Array.iteri
    (fun k (r, node) ->
      if k < 5 then
        Printf.printf "  #%d node %d  rank %.5f  out-degree %d\n" (k + 1) node r
          (Csr.out_degree csr (Option.get (Csr.index_of_node csr node))))
    ranked;

  let wcc = Kernels.wcc ~pool media csr in
  let wcc_ok = Kernels.wcc_reference csr = wcc.Kernels.labels in
  Printf.printf "wcc: %d components in %d rounds (reference match: %b)\n"
    wcc.Kernels.components wcc.Kernels.wcc_rounds wcc_ok;

  Core.commit db txn;

  (* a fresh snapshot finally sees the writer's friendships *)
  let after = Core.with_txn db (fun txn2 -> Csr.export ~pool mgr txn2) in
  Printf.printf "post-storm snapshot: n=%d m=%d (snapshot saw m=%d)\n"
    after.Csr.n after.Csr.m csr.Csr.m;
  Task_pool.shutdown pool;

  if not (snapshot_ok && bfs_ok && pr_ok && wcc_ok) then begin
    print_endline "ANALYTICS SMOKE FAILED";
    exit 1
  end;
  print_endline "analytics smoke: all checks passed"
