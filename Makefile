.PHONY: all build test check clean bench-smoke

all: build

build:
	dune build

test:
	dune runtest

# fast type-check of every module (no linking, no tests)
check:
	dune build @check

# tiny HTAP run: exercises the concurrent driver end to end and fails
# unless BENCH_htap.json parses, throughput is nonzero on both the update
# and the analytics side, no snapshot-isolation violation was seen, the
# per-operator profile agrees between interp and jit, and the metrics
# snapshot is valid Prometheus exposition
bench-smoke: build
	dune exec bin/poseidon_cli.exe -- htap --sf 0.01 --mode aot \
	  --writers 2 --readers 2 --duration 15 --seed 7 --out BENCH_htap.json \
	  --profile --metrics-out BENCH_htap.prom
	dune exec bin/poseidon_cli.exe -- stats --validate BENCH_htap.prom

clean:
	dune clean
