.PHONY: all build test check clean

all: build

build:
	dune build

test:
	dune runtest

# fast type-check of every module (no linking, no tests)
check:
	dune build @check

clean:
	dune clean
