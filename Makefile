.PHONY: all build test check clean bench-smoke recover-smoke checkpoint-smoke jit-smoke analytics-smoke

all: build

build:
	dune build

test:
	dune runtest

# fast type-check of every module (no linking, no tests)
check:
	dune build @check

# tiny HTAP run: exercises the concurrent driver end to end and fails
# unless BENCH_htap.json parses, throughput is nonzero on both the update
# and the analytics side, no snapshot-isolation violation was seen, the
# per-operator profile agrees between interp and jit, the metrics
# snapshot is valid Prometheus exposition, and the persist discipline
# holds its budget (group commit + coalesced flushing keep the run at
# ~15.5 flushes and ~3.6 fences per committed txn; the caps below leave
# ~15% headroom for scheduling noise on small runs)
bench-smoke: build
	dune exec bin/poseidon_cli.exe -- htap --sf 0.01 --mode aot \
	  --writers 2 --readers 2 --duration 15 --seed 7 --out BENCH_htap.json \
	  --profile --metrics-out BENCH_htap.prom \
	  --max-flushes-per-commit 18 --max-fences-per-commit 4.5
	dune exec bin/poseidon_cli.exe -- stats --validate BENCH_htap.prom

# crash-to-ready recovery benchmark: serial vs 2/4-domain parallel
# rebuild latency, checkpointed + lazy instant restart, plus a 200-point
# randomized crash battery (checkpoint mid-mix); fails unless
# BENCH_recovery.json validates, every phase is timed, the 4-domain
# rebuild beats serial by >= 2x, lazy time-to-first-query beats serial
# full rebuild by >= 5x, and every sampled crash point recovers to the
# same state at every domain count and in lazy mode
recover-smoke: build
	dune exec bin/poseidon_cli.exe -- recover-bench --sf 0.05 --seed 42 \
	  --threads 4 --battery-points 200 --min-speedup 2.0 \
	  --lazy --min-ttfq-speedup 5.0 \
	  --out BENCH_recovery.json

# fast checkpoint gate for the PR loop: a 20-point bench battery with a
# mid-mix checkpoint plus the TTFQ gate, the checkpoint-targeted crash
# tests (mid-checkpoint cuts, generation flipping, tamper rejection),
# and the checkpoint CLI drill
checkpoint-smoke: build
	dune exec bin/poseidon_cli.exe -- recover-bench --sf 0.05 --seed 42 \
	  --threads 2 --battery-points 20 --lazy --min-ttfq-speedup 5.0 \
	  --out BENCH_recovery.json
	dune exec test/test_checkpoint.exe
	dune exec bin/poseidon_cli.exe -- checkpoint --sf 0.02 --cycles 2

# compiled morsel-parallel gate for the PR loop: the seed-pure five-way
# differential battery (serial interp == parallel interp 2/4 == jit
# serial == jit parallel 2/4 == adaptive) at the default point count,
# plus a Fig. 10 bench run gated on per-worker adaptive throughput >=
# serial AOT and compiled-parallel >= interpreter-parallel, with
# replay-tier hits required in steady state
jit-smoke: build
	dune exec test/test_jit.exe
	dune exec bin/poseidon_cli.exe -- htap --sf 0.02 --mode aot \
	  --writers 2 --readers 2 --duration 20 --seed 42 \
	  --out BENCH_htap.json --min-adaptive-ratio 1.0

# analytics gate for the PR loop: the full differential battery
# (serial == 2/4-domain for BFS levels, bitwise PageRank ranks, WCC
# labels, CSR fingerprints) plus the example smoke (exits non-zero on
# any reference mismatch) and a small analytics bench run whose
# BENCH_analytics.json must validate: snapshot-under-storm equality,
# per-domain export/kernel rows, convergence
analytics-smoke: build
	dune exec test/test_analytics.exe
	dune exec examples/analytics_demo.exe
	dune exec bin/poseidon_cli.exe -- analytics-bench --sf 0.05 --seed 42 \
	  --threads 2 --out BENCH_analytics.json

clean:
	dune clean
