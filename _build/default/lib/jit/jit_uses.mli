(** Register-use queries over an IR function, shared by the DCE pass and
    the emitter's compare/branch fusion peephole. *)

val uses : int list -> Ir.instr -> int list
(** Registers read by an instruction, prepended to the accumulator. *)

val read_elsewhere : Ir.func -> reg:int -> except:int -> bool
(** Is [reg] read anywhere besides block [except]'s terminator condition
    and that block's own trailing definition?  Conservative. *)
