(* The background query-compilation service (Section 6.2, "Adaptive
   Execution": "the backend thread compiles the query plan into machine
   code").

   One persistent domain drains a queue of compile jobs.  Adaptive
   queries submit a job and keep interpreting morsels; they never block
   on the compiler - when the job finishes it publishes the emitted code
   through the query's atomic cell and the next pulled morsel runs
   compiled. *)

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable started : bool;
}

let service = { mu = Mutex.create (); nonempty = Condition.create (); queue = Queue.create (); started = false }

let rec loop () =
  Mutex.lock service.mu;
  while Queue.is_empty service.queue do
    Condition.wait service.nonempty service.mu
  done;
  let job = Queue.pop service.queue in
  Mutex.unlock service.mu;
  (try job () with _ -> ());
  loop ()

let ensure_started () =
  Mutex.lock service.mu;
  if not service.started then begin
    service.started <- true;
    ignore (Domain.spawn loop)
  end;
  Mutex.unlock service.mu

let submit job =
  ensure_started ();
  Mutex.lock service.mu;
  Queue.push job service.queue;
  Condition.signal service.nonempty;
  Mutex.unlock service.mu

let pending () =
  Mutex.lock service.mu;
  let n = Queue.length service.queue in
  Mutex.unlock service.mu;
  n
