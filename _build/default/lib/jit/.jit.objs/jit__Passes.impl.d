lib/jit/passes.ml: Array Hashtbl Ir List
