lib/jit/cache.ml: Emit Fun Hashtbl Mutex Pmem String
