lib/jit/ir.ml: Array Fmt List Marshal Printf String
