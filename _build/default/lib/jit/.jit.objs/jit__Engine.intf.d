lib/jit/engine.mli: Cache Exec Format Ir Passes Pmem Query Storage
