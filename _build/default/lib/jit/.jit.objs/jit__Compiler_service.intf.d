lib/jit/compiler_service.mli:
