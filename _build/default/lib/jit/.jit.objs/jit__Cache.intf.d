lib/jit/cache.mli: Emit Pmem
