lib/jit/codegen.mli: Ir Query
