lib/jit/emit.ml: Array Ir Jit_uses List Passes Query Storage
