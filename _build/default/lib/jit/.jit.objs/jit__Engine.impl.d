lib/jit/engine.ml: Array Atomic Cache Codegen Compiler_service Emit Exec Fmt Ir List Mutex Option Passes Pmem Printf Query Storage Unix
