lib/jit/jit_uses.ml: Array Ir List
