lib/jit/compiler_service.ml: Condition Domain Mutex Queue
