lib/jit/jit_uses.mli: Ir
