lib/jit/emit.mli: Ir Query Storage
