lib/jit/codegen.ml: Array Ir List Query Storage
