(** Background query-compilation service (Section 6.2, adaptive
    execution).  One persistent domain drains compile jobs; adaptive
    queries submit and never block - the job publishes emitted code
    through the query's atomic cell. *)

val submit : (unit -> unit) -> unit
val pending : unit -> int
