(** IR optimisation passes - the paper's runtime cascade (Section 6.2):
    Promote-Memory-To-Register, Instruction Combining / constant folding
    with per-block copy propagation, Dead Code Elimination, CFG
    Simplification, and Loop Unrolling of innermost loop regions. *)

val mem2reg : Ir.func -> unit
val combine : Ir.func -> unit
val dce : Ir.func -> unit
val simplify_cfg : Ir.func -> unit
val unroll : Ir.func -> unit
val unroll_limit : int

type level = O0 | O1 | O3

val optimize : ?level:level -> Ir.func -> Ir.func
(** Run the cascade at the given level ([O3] default: unroll, mem2reg,
    combine, dce, combine, dce, simplify). *)
