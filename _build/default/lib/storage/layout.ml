(* Persistent record layouts (DD1-DD4).

   Nodes and relationships are equally-sized, cache-line-aligned records so
   that they can be addressed by 8-byte array offsets instead of 16-byte
   persistent pointers (DD2, DG6).  All link fields store [id + 1] with 0
   meaning "none", so a zero-initialised record is a valid empty one.

   Node record - 64 bytes (paper: 56 B; we round up to one full cache line,
   keeping the rts timestamp persistent as in Fig. 2):

     0   label        u32
     4   (reserved)   u32
     8   first_out    u64   first outgoing relationship id + 1
     16  first_in     u64   first incoming relationship id + 1
     24  first_prop   u64   first property batch id + 1
     32  txn_id       u64   write lock (0 = unlocked)           } MVTO
     40  bts          u64   begin timestamp                     } fields
     48  ets          u64   end timestamp (MAX = infinity)      } (Sec. 5)
     56  rts          u64   read timestamp                      }

   Relationship record - 80 bytes (paper: 72 B):

     0   label        u32
     4   (reserved)   u32
     8   src          u64   source node id
     16  dst          u64   destination node id
     24  next_src     u64   next relationship of src's out-list, id + 1
     32  next_dst     u64   next relationship of dst's in-list, id + 1
     40  first_prop   u64   first property batch id + 1
     48  txn_id / 56 bts / 64 ets / 72 rts   as above

   Property batch - 64 bytes, key-value pairs grouped per owner to obtain
   cache-line-sized records (DD3):

     0   owner        u64   owning node/rel id + 1 (table implied by caller)
     8   next         u64   next batch id + 1
     16  3 slots x 16 B: { key u32; tag u32; payload u64 }
         key = 0xFFFFFFFF marks an empty slot. *)

let inf_ts = max_int
let node_size = 64
let rel_size = 80
let prop_size = 64
let prop_slots = 3
let no_key = 0xFFFFFFFF

module Node = struct
  let label = 0
  let first_out = 8
  let first_in = 16
  let first_prop = 24
  let txn_id = 32
  let bts = 40
  let ets = 48
  let rts = 56
end

module Rel = struct
  let label = 0
  let src = 8
  let dst = 16
  let next_src = 24
  let next_dst = 32
  let first_prop = 40
  let txn_id = 48
  let bts = 56
  let ets = 64
  let rts = 72
end

module Prop = struct
  let owner = 0
  let next = 8
  let slot i = 16 + (16 * i)
  let slot_key i = slot i
  let slot_tag i = slot i + 4
  let slot_payload i = slot i + 8
end

(* Decoded in-memory views.  Link fields keep the +1 encoding of the
   persistent form; use [link] / [unlink] to convert. *)

let link = function None -> 0 | Some id -> id + 1
let unlink v = if v = 0 then None else Some (v - 1)

type node = {
  mutable label : int;
  mutable first_out : int; (* id + 1, 0 = none *)
  mutable first_in : int;
  mutable first_prop : int;
  mutable txn_id : int; (* 63-bit timestamps; 0 = unlocked *)
  mutable bts : int;
  mutable ets : int; (* inf_ts = infinity *)
  mutable rts : int;
}

type rel = {
  mutable rlabel : int;
  mutable src : int;
  mutable dst : int;
  mutable next_src : int;
  mutable next_dst : int;
  mutable rfirst_prop : int;
  mutable rtxn_id : int;
  mutable rbts : int;
  mutable rets : int;
  mutable rrts : int;
}

let empty_node () =
  {
    label = 0;
    first_out = 0;
    first_in = 0;
    first_prop = 0;
    txn_id = 0;
    bts = 0;
    ets = inf_ts;
    rts = 0;
  }

let empty_rel () =
  {
    rlabel = 0;
    src = 0;
    dst = 0;
    next_src = 0;
    next_dst = 0;
    rfirst_prop = 0;
    rtxn_id = 0;
    rbts = 0;
    rets = inf_ts;
    rrts = 0;
  }

let copy_node n = { n with label = n.label }
let copy_rel r = { r with rlabel = r.rlabel }
