(* Persistent string dictionary (DD3).

   All variable-length strings (labels, property keys, string property
   values) are dictionary-encoded so that records stay fixed-size and
   addressable by offset, writes shrink, and filters compare integer codes
   instead of strings.

   On PMem the dictionary keeps (as in the paper) both directions:
   - a code array: code -> string-heap offset,
   - an open-addressing hash table: string -> code (entries are
     (heap offset, code) pairs; comparing via the heap string).
   Strings live in bump-allocated heap segments, so encoding a new string
   costs no per-string PMem allocation (DG5).

   An optional DRAM mirror (the "hybrid" variant discussed in Sections 4.2
   and 8) caches both directions; it is rebuilt on recovery.

   Crash consistency: string bytes, the code-array entry and the hash entry
   are persisted before [next_code] is bumped atomically; [recover] then
   scrubs any hash entries whose code is >= [next_code] by rebuilding the
   hash from the code array. *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Pptr = Pmem.Pptr
module Media = Pmem.Media
module Pmdk_tx = Pmem.Pmdk_tx

type t = {
  pool : Pool.t;
  hdr : int;
  hybrid : bool;
  mutable to_code : (string, int) Hashtbl.t; (* DRAM mirror *)
  mutable of_code : (int, string) Hashtbl.t;
  mu : Mutex.t;
}

(* header field offsets *)
let f_hash_off = 0
let f_hash_cap = 8
let f_hash_count = 16
let f_code_off = 24
let f_code_cap = 32
let f_next_code = 40
let f_seg_end = 48
let f_heap_bump = 56
let hdr_bytes = 64

let initial_hash_cap = 1024
let initial_code_cap = 1024
let seg_bytes = 262_144

let fnv1a s =
  (* FNV-1a with the offset basis truncated to OCaml's 63-bit int range *)
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let get t f = Pool.read_int t.pool (t.hdr + f)
let set_atomic t f v = Pool.atomic_write_int t.pool (t.hdr + f) v

let alloc_segment t =
  let seg = Alloc.alloc t.pool seg_bytes in
  set_atomic t f_heap_bump seg;
  set_atomic t f_seg_end (seg + seg_bytes)

let create ?(hybrid = true) pool =
  let hdr = Alloc.alloc pool hdr_bytes in
  let hash_off = Alloc.alloc pool (16 * initial_hash_cap) in
  Pool.fill pool ~off:hash_off ~len:(16 * initial_hash_cap) '\000';
  Pool.persist pool ~off:hash_off ~len:(16 * initial_hash_cap);
  let code_off = Alloc.alloc pool (8 * initial_code_cap) in
  Pool.fill pool ~off:code_off ~len:(8 * initial_code_cap) '\000';
  Pool.persist pool ~off:code_off ~len:(8 * initial_code_cap);
  let t =
    {
      pool;
      hdr;
      hybrid;
      to_code = Hashtbl.create 1024;
      of_code = Hashtbl.create 1024;
      mu = Mutex.create ();
    }
  in
  Pool.write_int pool (hdr + f_hash_off) hash_off;
  Pool.write_int pool (hdr + f_hash_cap) initial_hash_cap;
  Pool.write_int pool (hdr + f_hash_count) 0;
  Pool.write_int pool (hdr + f_code_off) code_off;
  Pool.write_int pool (hdr + f_code_cap) initial_code_cap;
  Pool.write_int pool (hdr + f_next_code) 1; (* code 0 = none *)
  Pool.persist pool ~off:hdr ~len:hdr_bytes;
  alloc_segment t;
  t

let header_off t = t.hdr

let read_heap_string t off =
  let len = Pool.read_u32 t.pool off in
  Pool.read_string t.pool (off + 4) len

(* Store a string in the heap; returns its offset. *)
let push_heap t s =
  let need = 4 + String.length s in
  if get t f_heap_bump + need > get t f_seg_end then alloc_segment t;
  let off = get t f_heap_bump in
  Pool.write_u32 t.pool off (String.length s);
  Pool.write_string t.pool (off + 4) s;
  Pool.persist t.pool ~off ~len:need;
  set_atomic t f_heap_bump (off + ((need + 7) / 8 * 8));
  off

let hash_entry t i =
  let base = get t f_hash_off + (16 * i) in
  (Pool.read_int t.pool base, Pool.read_int t.pool (base + 8))

let set_hash_entry t i ~heap_off ~code =
  let base = get t f_hash_off + (16 * i) in
  Pool.write_int t.pool base heap_off;
  Pool.write_int t.pool (base + 8) code;
  Pool.persist t.pool ~off:base ~len:16

let rec hash_insert t ~heap_off ~code s =
  let cap = get t f_hash_cap in
  if (get t f_hash_count + 1) * 10 > cap * 7 then begin
    grow_hash t;
    hash_insert t ~heap_off ~code s
  end
  else begin
    let rec probe i =
      let h, _ = hash_entry t i in
      if h = 0 then set_hash_entry t i ~heap_off ~code
      else probe ((i + 1) mod cap)
    in
    probe (fnv1a s mod cap);
    set_atomic t f_hash_count (get t f_hash_count + 1)
  end

and grow_hash t =
  let old_off = get t f_hash_off and old_cap = get t f_hash_cap in
  let cap = old_cap * 2 in
  let off = Alloc.alloc t.pool (16 * cap) in
  Pool.fill t.pool ~off ~len:(16 * cap) '\000';
  for i = 0 to old_cap - 1 do
    let heap_off, code = (fun (a, b) -> (a, b)) (hash_entry t i) in
    if heap_off <> 0 then begin
      let s = read_heap_string t heap_off in
      let rec probe j =
        let base = off + (16 * j) in
        if Pool.read_int t.pool base = 0 then begin
          Pool.write_int t.pool base heap_off;
          Pool.write_int t.pool (base + 8) code
        end
        else probe ((j + 1) mod cap)
      in
      probe (fnv1a s mod cap)
    end
  done;
  Pool.persist t.pool ~off ~len:(16 * cap);
  (* publish the new table: cap first would break probing, so swing the
     offset last; recovery rebuilds the hash anyway *)
  set_atomic t f_hash_cap cap;
  set_atomic t f_hash_off off;
  Alloc.free t.pool ~off:old_off ~size:(16 * old_cap)

let hash_find t s =
  let cap = get t f_hash_cap in
  let rec probe i steps =
    if steps > cap then None
    else
      let heap_off, code = hash_entry t i in
      if heap_off = 0 then None
      else if
        code < get t f_next_code && String.equal (read_heap_string t heap_off) s
      then Some code
      else probe ((i + 1) mod cap) (steps + 1)
  in
  probe (fnv1a s mod cap) 0

let grow_code_array t needed =
  let old_off = get t f_code_off and old_cap = get t f_code_cap in
  if needed >= old_cap then begin
    let cap = max (old_cap * 2) (needed + 1) in
    let off = Alloc.alloc t.pool (8 * cap) in
    Pool.fill t.pool ~off ~len:(8 * cap) '\000';
    Pool.write_bytes t.pool off (Pool.read_bytes t.pool old_off (8 * old_cap));
    Pool.persist t.pool ~off ~len:(8 * cap);
    set_atomic t f_code_cap cap;
    set_atomic t f_code_off off;
    Alloc.free t.pool ~off:old_off ~size:(8 * old_cap)
  end

(* Encode a string, assigning a fresh code when absent. *)
let encode t s =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  match if t.hybrid then Hashtbl.find_opt t.to_code s else None with
  | Some c -> c
  | None -> (
      match hash_find t s with
      | Some c ->
          if t.hybrid then begin
            Hashtbl.replace t.to_code s c;
            Hashtbl.replace t.of_code c s
          end;
          c
      | None ->
          let code = get t f_next_code in
          let heap_off = push_heap t s in
          grow_code_array t code;
          Pool.write_int t.pool (get t f_code_off + (8 * code)) heap_off;
          Pool.persist t.pool ~off:(get t f_code_off + (8 * code)) ~len:8;
          hash_insert t ~heap_off ~code s;
          set_atomic t f_next_code (code + 1);
          if t.hybrid then begin
            Hashtbl.replace t.to_code s code;
            Hashtbl.replace t.of_code code s
          end;
          code)

let lookup t s =
  if t.hybrid then
    match Hashtbl.find_opt t.to_code s with
    | Some c -> Some c
    | None -> hash_find t s
  else hash_find t s

exception Unknown_code of int

let decode t code =
  if code <= 0 || code >= get t f_next_code then raise (Unknown_code code);
  match if t.hybrid then Hashtbl.find_opt t.of_code code else None with
  | Some s -> s
  | None ->
      let heap_off = Pool.read_int t.pool (get t f_code_off + (8 * code)) in
      if heap_off = 0 then raise (Unknown_code code);
      let s = read_heap_string t heap_off in
      if t.hybrid then begin
        Hashtbl.replace t.of_code code s;
        Hashtbl.replace t.to_code s code
      end;
      s

let count t = get t f_next_code - 1

(* Reattach after restart: rebuild the persistent hash from the code array
   (scrubbing entries from interrupted inserts) and warm the DRAM mirror. *)
let open_ ?(hybrid = true) pool ~hdr () =
  let t =
    {
      pool;
      hdr;
      hybrid;
      to_code = Hashtbl.create 1024;
      of_code = Hashtbl.create 1024;
      mu = Mutex.create ();
    }
  in
  let next = get t f_next_code in
  let hash_off = get t f_hash_off and cap = get t f_hash_cap in
  Pool.fill pool ~off:hash_off ~len:(16 * cap) '\000';
  set_atomic t f_hash_count 0;
  for code = 1 to next - 1 do
    let heap_off = Pool.read_int pool (get t f_code_off + (8 * code)) in
    if heap_off <> 0 then begin
      let s = read_heap_string t heap_off in
      hash_insert t ~heap_off ~code s;
      if hybrid then begin
        Hashtbl.replace t.to_code s code;
        Hashtbl.replace t.of_code code s
      end
    end
  done;
  Pool.persist pool ~off:(get t f_hash_off) ~len:(16 * get t f_hash_cap);
  t
