lib/storage/layout.ml:
