lib/storage/dict.mli: Pmem
