lib/storage/props.ml: Int64 Layout List Pmem Prop Table Value
