lib/storage/table.mli: Chunk Pmem
