lib/storage/graph_store.ml: Dict Int64 Layout List Node Pmem Props Rel Table Value
