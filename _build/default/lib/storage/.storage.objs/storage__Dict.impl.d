lib/storage/dict.ml: Char Fun Hashtbl Mutex Pmem String
