lib/storage/graph_store.mli: Dict Layout Pmem Props Table Value
