lib/storage/table.ml: Array Chunk Fun Mutex Pmem Queue
