lib/storage/chunk.ml: Int64 Pmem
