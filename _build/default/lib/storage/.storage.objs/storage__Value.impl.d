lib/storage/value.ml: Bool Float Fmt Int Int64 Printf String
