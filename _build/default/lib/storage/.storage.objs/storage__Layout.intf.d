lib/storage/layout.mli:
