lib/storage/props.mli: Pmem Table Value
