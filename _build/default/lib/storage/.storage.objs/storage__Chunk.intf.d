lib/storage/chunk.mli: Pmem
