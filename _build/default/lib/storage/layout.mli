(** Persistent record layouts (DD1-DD4).

    Nodes (64 B) and relationships (80 B) are equally-sized, cache-line
    aligned records addressed by 8-byte array offsets; property batches
    are cache-line sized.  Link fields store [id + 1] with 0 meaning
    "none", so zero-initialised records are valid empty ones.  Each
    record embeds the MVTO fields txn_id / bts / ets / rts (Fig. 2 of the
    paper). *)

val inf_ts : int
(** Open end-timestamp ("infinity"). *)

val node_size : int
val rel_size : int
val prop_size : int
val prop_slots : int
val no_key : int
(** Property-slot key marking an empty slot. *)

(** Field offsets within a node record. *)
module Node : sig
  val label : int
  val first_out : int
  val first_in : int
  val first_prop : int
  val txn_id : int
  val bts : int
  val ets : int
  val rts : int
end

(** Field offsets within a relationship record. *)
module Rel : sig
  val label : int
  val src : int
  val dst : int
  val next_src : int
  val next_dst : int
  val first_prop : int
  val txn_id : int
  val bts : int
  val ets : int
  val rts : int
end

(** Field offsets within a property batch. *)
module Prop : sig
  val owner : int
  val next : int
  val slot : int -> int
  val slot_key : int -> int
  val slot_tag : int -> int
  val slot_payload : int -> int
end

val link : int option -> int
(** [Some id] -> [id + 1]; [None] -> 0. *)

val unlink : int -> int option

(** Decoded in-memory views (link fields keep the +1 encoding). *)

type node = {
  mutable label : int;
  mutable first_out : int;
  mutable first_in : int;
  mutable first_prop : int;
  mutable txn_id : int;
  mutable bts : int;
  mutable ets : int;
  mutable rts : int;
}

type rel = {
  mutable rlabel : int;
  mutable src : int;
  mutable dst : int;
  mutable next_src : int;
  mutable next_dst : int;
  mutable rfirst_prop : int;
  mutable rtxn_id : int;
  mutable rbts : int;
  mutable rets : int;
  mutable rrts : int;
}

val empty_node : unit -> node
val empty_rel : unit -> rel
val copy_node : node -> node
val copy_rel : rel -> rel
