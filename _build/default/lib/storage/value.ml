(* Property values of the property-graph data model.

   Strings are dictionary-encoded before they reach persistent storage
   (DD3), so the on-media representation of every value is a (tag, 64-bit
   payload) pair; [Str] carries the dictionary code.  The [Text] constructor
   only exists transiently at the API boundary, before encoding / after
   decoding. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Str of int (* dictionary code *)
  | Text of string (* un-encoded string, API boundary only *)

let tag = function
  | Null -> 0
  | Int _ -> 1
  | Float _ -> 2
  | Bool _ -> 3
  | Str _ -> 4
  | Text _ -> invalid_arg "Value.tag: Text must be dictionary-encoded first"

let payload = function
  | Null -> 0L
  | Int i -> Int64.of_int i
  | Float f -> Int64.bits_of_float f
  | Bool b -> if b then 1L else 0L
  | Str c -> Int64.of_int c
  | Text _ -> invalid_arg "Value.payload: Text must be dictionary-encoded first"

let decode ~tag ~payload =
  match tag with
  | 0 -> Null
  | 1 -> Int (Int64.to_int payload)
  | 2 -> Float (Int64.float_of_bits payload)
  | 3 -> Bool (payload <> 0L)
  | 4 -> Str (Int64.to_int payload)
  | t -> invalid_arg (Printf.sprintf "Value.decode: bad tag %d" t)

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Bool a, Bool b -> a = b
  | Str a, Str b -> a = b
  | Text a, Text b -> String.equal a b
  | _ -> false

let tag_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4
  | Text _ -> 5

let compare a b =
  match (a, b) with
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Bool a, Bool b -> Bool.compare a b
  | Str a, Str b -> Int.compare a b
  | Text a, Text b -> String.compare a b
  | _ -> Int.compare (tag_rank a) (tag_rank b)

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Bool b -> Fmt.bool ppf b
  | Str c -> Fmt.pf ppf "str#%d" c
  | Text s -> Fmt.pf ppf "%S" s

let to_string = Fmt.to_to_string pp

(* Sort key used by B+-tree indexes: values are indexed by their 64-bit
   payload, with floats mapped to an order-preserving integer encoding. *)
let index_key = function
  | Int i -> Int64.of_int i
  | Str c -> Int64.of_int c
  | Bool b -> if b then 1L else 0L
  | Float f ->
      let bits = Int64.bits_of_float f in
      if Int64.compare bits 0L < 0 then Int64.logxor bits Int64.max_int
      else bits
  | Null -> Int64.min_int
  | Text _ -> invalid_arg "Value.index_key: Text must be encoded first"
