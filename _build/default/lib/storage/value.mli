(** Property values of the property-graph data model.

    Strings are dictionary-encoded before reaching persistent storage
    (DD3): the on-media representation of every value is a (tag, 64-bit
    payload) pair; [Str] carries a dictionary code.  [Text] exists only
    transiently at the API boundary. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Str of int  (** dictionary code *)
  | Text of string  (** un-encoded string; API boundary only *)

val tag : t -> int
(** Persistent type tag.
    @raise Invalid_argument on [Text] (encode it first). *)

val payload : t -> int64
(** Persistent 64-bit payload. @raise Invalid_argument on [Text]. *)

val decode : tag:int -> payload:int64 -> t
val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order; same-type values compare naturally, different types by
    type rank. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val index_key : t -> int64
(** Order-preserving 64-bit key used by B+-tree indexes (floats are
    mapped to an order-preserving integer encoding). *)
