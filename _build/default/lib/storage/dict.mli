(** Persistent bidirectional string dictionary (DD3).

    Keeps both translation directions in PMem (code array + open
    addressing hash) with an optional DRAM mirror (the hybrid variant of
    Sections 4.2/8).  String storage is bump-allocated from segments, so
    encoding costs no per-string PMem allocation (DG5). *)

type t

exception Unknown_code of int

val create : ?hybrid:bool -> Pmem.Pool.t -> t
val open_ : ?hybrid:bool -> Pmem.Pool.t -> hdr:int -> unit -> t
(** Reattach after a restart: rebuilds the persistent hash from the code
    array (scrubbing torn inserts) and warms the DRAM mirror. *)

val header_off : t -> int
val encode : t -> string -> int
(** Return the code for a string, assigning a fresh one if absent. *)

val lookup : t -> string -> int option
val decode : t -> int -> string
(** @raise Unknown_code for unassigned codes. *)

val count : t -> int
