(** Volatile version chains (Section 5.2).

    A record's chain lives in DRAM and holds, newest first, the single
    dirty (uncommitted) version of the current writer and the superseded
    committed versions still visible to older snapshots.  A version is a
    full copy of the object: record image plus materialised properties. *)

module Value = Storage.Value

type kind = Node | Rel

val pp_kind : Format.formatter -> kind -> unit

type key = kind * int

type image = N of Storage.Layout.node | R of Storage.Layout.rel

type version = {
  image : image;
  mutable props : (int * Value.t) list;
  mutable deleted : bool;
}

val txn_id : version -> int
val bts : version -> int
val ets : version -> int
val set_txn_id : version -> int -> unit
val set_bts : version -> int -> unit
val set_ets : version -> int -> unit
val copy : version -> version

(** Striped chain table; the stripe mutex also guards the record's
    persistent MVTO header. *)
type chains

val create_chains : unit -> chains
val stripe : chains -> key -> Mutex.t
val with_stripe : chains -> key -> (unit -> 'a) -> 'a
val find : chains -> key -> version list
val set : chains -> key -> version list -> unit
val push : chains -> key -> version -> unit
val chain_count : chains -> int
val total_versions : chains -> int
val iter_keys : chains -> (key -> unit) -> unit
