(** Transaction objects for the MVTO protocol (Section 5.1).

    A transaction is identified by its begin timestamp; the write set
    records per object the dirty version created in DRAM and the
    preserved copy of the superseded version (for exact abort
    rollback). *)

type status = Active | Committed | Aborted

type wop =
  | Insert  (** record written directly to PMem, locked until commit *)
  | Update of { dirty : Version.version; saved : Version.version }
  | Delete of { dirty : Version.version; saved : Version.version }

type t = {
  id : int;
  mutable status : status;
  mutable writes : (Version.key * wop) list;
  mutable nreads : int;
}

val make : int -> t
val id : t -> int
val status : t -> status
val is_active : t -> bool
val find_write : t -> Version.key -> wop option
val add_write : t -> Version.key -> wop -> unit
val replace_write : t -> Version.key -> wop -> unit
val writes : t -> (Version.key * wop) list
val pp_status : Format.formatter -> status -> unit
