(* Transaction objects for the MVTO protocol (Section 5.1).

   A transaction is identified by the timestamp handed out at begin; its
   write set records, per object, the dirty version it created in DRAM and
   the preserved copy of the version it superseded (so that abort can
   restore the chain exactly). *)

type status = Active | Committed | Aborted

type wop =
  | Insert (* record written directly to PMem, still locked (Sec. 5.1) *)
  | Update of { dirty : Version.version; saved : Version.version }
  | Delete of { dirty : Version.version; saved : Version.version }

type t = {
  id : int; (* begin timestamp = transaction identifier *)
  mutable status : status;
  mutable writes : (Version.key * wop) list; (* newest first *)
  mutable nreads : int;
}

let make id = { id; status = Active; writes = []; nreads = 0 }
let id t = t.id
let status t = t.status
let is_active t = t.status = Active

let find_write t key =
  List.find_map (fun (k, w) -> if k = key then Some w else None) t.writes

let add_write t key w = t.writes <- (key, w) :: t.writes

let replace_write t key w =
  t.writes <- (key, w) :: List.filter (fun (k, _) -> k <> key) t.writes

let writes t = t.writes

let pp_status ppf = function
  | Active -> Fmt.string ppf "active"
  | Committed -> Fmt.string ppf "committed"
  | Aborted -> Fmt.string ppf "aborted"
