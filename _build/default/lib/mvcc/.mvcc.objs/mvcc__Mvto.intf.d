lib/mvcc/mvto.mli: Storage Txn Version
