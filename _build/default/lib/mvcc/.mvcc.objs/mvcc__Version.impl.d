lib/mvcc/version.ml: Array Fmt Fun Hashtbl List Mutex Storage
