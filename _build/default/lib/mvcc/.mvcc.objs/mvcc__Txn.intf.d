lib/mvcc/txn.mli: Format Version
