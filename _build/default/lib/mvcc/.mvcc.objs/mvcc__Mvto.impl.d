lib/mvcc/mvto.ml: Atomic Hashtbl List Logs Mutex Pmem Storage Txn Version
