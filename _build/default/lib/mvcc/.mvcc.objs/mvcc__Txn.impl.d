lib/mvcc/txn.ml: Fmt List Version
