lib/mvcc/version.mli: Format Mutex Storage
