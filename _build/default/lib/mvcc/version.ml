(* Volatile version chains (Section 5.2).

   A record's chain lives in DRAM and holds, newest first:
   - at most one *dirty* (uncommitted) version owned by the single writer
     currently holding the record's write lock, and
   - superseded *committed* versions preserved so that older readers can
     still see them after a commit overwrites the PMem record in place.

   The version images reuse the decoded [Layout] records; their embedded
   txn_id / bts / ets / rts fields carry the MVTO metadata.  Properties are
   materialised into the version when it is created (a version is a full
   copy of the object, as in the paper). *)

module Value = Storage.Value
module Layout = Storage.Layout

type kind = Node | Rel

let pp_kind ppf = function
  | Node -> Fmt.string ppf "node"
  | Rel -> Fmt.string ppf "rel"

type key = kind * int

type image = N of Layout.node | R of Layout.rel

type version = {
  image : image;
  mutable props : (int * Value.t) list;
  mutable deleted : bool; (* dirty delete marker *)
}

let txn_id v = match v.image with N n -> n.Layout.txn_id | R r -> r.Layout.rtxn_id
let bts v = match v.image with N n -> n.Layout.bts | R r -> r.Layout.rbts
let ets v = match v.image with N n -> n.Layout.ets | R r -> r.Layout.rets
(* timestamps are 63-bit ints; [Layout.inf_ts] marks an open interval *)

let set_txn_id v x =
  match v.image with
  | N n -> n.Layout.txn_id <- x
  | R r -> r.Layout.rtxn_id <- x

let set_bts v x =
  match v.image with N n -> n.Layout.bts <- x | R r -> r.Layout.rbts <- x

let set_ets v x =
  match v.image with N n -> n.Layout.ets <- x | R r -> r.Layout.rets <- x

let copy v =
  {
    image =
      (match v.image with
      | N n -> N (Layout.copy_node n)
      | R r -> R (Layout.copy_rel r));
    props = v.props;
    deleted = v.deleted;
  }

(* Striped chain table: one mutex stripe guards both the chain and the
   persistent header of the records hashing to it. *)

type chains = {
  tbl : (key, version list ref) Hashtbl.t;
  tbl_mu : Mutex.t;
  stripes : Mutex.t array;
}

let n_stripes = 256

let create_chains () =
  {
    tbl = Hashtbl.create 1024;
    tbl_mu = Mutex.create ();
    stripes = Array.init n_stripes (fun _ -> Mutex.create ());
  }

let stripe c (key : key) = c.stripes.(Hashtbl.hash key land (n_stripes - 1))

let with_stripe c key f =
  let mu = stripe c key in
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* All chain accessors must be called with the key's stripe held. *)

let find c key =
  Mutex.lock c.tbl_mu;
  let r = Hashtbl.find_opt c.tbl key in
  Mutex.unlock c.tbl_mu;
  match r with Some l -> !l | None -> []

let set c key versions =
  Mutex.lock c.tbl_mu;
  (if versions = [] then Hashtbl.remove c.tbl key
   else
     match Hashtbl.find_opt c.tbl key with
     | Some l -> l := versions
     | None -> Hashtbl.add c.tbl key (ref versions));
  Mutex.unlock c.tbl_mu

let push c key v = set c key (v :: find c key)

let chain_count c =
  Mutex.lock c.tbl_mu;
  let n = Hashtbl.length c.tbl in
  Mutex.unlock c.tbl_mu;
  n

let total_versions c =
  Mutex.lock c.tbl_mu;
  let n = Hashtbl.fold (fun _ l acc -> acc + List.length !l) c.tbl 0 in
  Mutex.unlock c.tbl_mu;
  n

let iter_keys c f =
  Mutex.lock c.tbl_mu;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) c.tbl [] in
  Mutex.unlock c.tbl_mu;
  List.iter f keys
