(** Node placement backends for the B+-tree (Section 4.2).

    Handles: 0 is null, negative = heap (DRAM) nodes, positive = pool
    offsets - disjoint spaces, so the hybrid placement dispatches on the
    sign.  Costs: one [touch] per node visit (heap nodes charge a DRAM
    line, pool nodes a block-granular PMem read); writes go through the
    charged pool operations and [persist] makes a pool node durable. *)

val fanout : int
val node_bytes : int

type t = {
  alloc : leaf:bool -> int;
  free : int -> unit;
  is_leaf : int -> bool;
  nkeys : int -> int;
  set_nkeys : int -> int -> unit;
  get_key : int -> int -> int64;
  set_key : int -> int -> int64 -> unit;
  get_val : int -> int -> int64;
  set_val : int -> int -> int64 -> unit;
  get_next : int -> int;
  set_next : int -> int -> unit;
  touch : int -> unit;
  persist : int -> unit;
  media : Pmem.Media.t;
}

type placement = Volatile | Persistent | Hybrid

val pp_placement : Format.formatter -> placement -> unit
val make : placement -> pool:Pmem.Pool.t -> media:Pmem.Media.t -> t
