lib/gindex/index.ml: Btree Int64 List Node_store Pmem Printf Storage
