lib/gindex/btree.mli: Node_store
