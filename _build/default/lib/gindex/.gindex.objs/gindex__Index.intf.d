lib/gindex/index.mli: Btree Node_store Pmem Storage
