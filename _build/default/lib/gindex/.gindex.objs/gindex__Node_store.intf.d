lib/gindex/node_store.mli: Format Pmem
