lib/gindex/node_store.ml: Array Fmt Pmem
