lib/gindex/btree.ml: Array Int64 List Node_store
