(* Node placement backends for the B+-tree (Section 4.2, "Hybrid Indexes").

   The tree core is written against this record of operations; three
   placements are provided:

   - [volatile]: all nodes on the OCaml heap, charged DRAM costs - the
     paper's DRAM baseline index;
   - [persistent]: all nodes as 512-byte pool blocks - the all-PMem
     baseline;
   - [hybrid]: inner nodes on the heap, leaves in the pool (selective
     persistence a la FPTree): at most one PMem node is read per lookup and
     recovery only rebuilds the inner levels from the leaf chain.

   Handle encoding: 0 is null; negative handles are heap nodes (-idx - 1);
   positive handles are pool offsets.  This keeps the two spaces disjoint
   in the hybrid placement.

   Cost model: one [touch] per node visit - heap nodes charge a single
   DRAM line (upper levels are effectively cache-resident), pool nodes
   charge a two-line block-granular PMem read; field reads within a visited
   node are then uncharged.  Writes and persists of pool nodes go through
   the charged [Pool] operations.

   Pool node layout (512 B, a multiple of the 256 B DCPMM block, DG3):

     0    meta u64: bit 0 = leaf flag, bits 8.. = nkeys
     8    next leaf (u64 offset, 0 = null)
     16   keys: 30 x i64
     256  leaf values / inner children: 31 x i64 (only 31st used by inner)
*)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Media = Pmem.Media

let fanout = 30
let node_bytes = 512

type t = {
  alloc : leaf:bool -> int;
  free : int -> unit;
  is_leaf : int -> bool;
  nkeys : int -> int;
  set_nkeys : int -> int -> unit;
  get_key : int -> int -> int64;
  set_key : int -> int -> int64 -> unit;
  get_val : int -> int -> int64; (* leaf payloads / inner children (as i64) *)
  set_val : int -> int -> int64 -> unit;
  get_next : int -> int;
  set_next : int -> int -> unit;
  touch : int -> unit; (* charge one node visit *)
  persist : int -> unit; (* make a node durable (no-op on heap) *)
  media : Media.t;
}

(* --- Heap backend ------------------------------------------------------- *)

type hnode = {
  mutable n : int;
  keys : int64 array;
  vals : int64 array; (* vals.(fanout) holds the extra inner child *)
  mutable next : int;
  leaf : bool;
}

type heap = { mutable nodes : hnode option array; mutable used : int }

let heap_create () = { nodes = Array.make 64 None; used = 0 }

let heap_get h handle =
  match h.nodes.(-handle - 1) with
  | Some n -> n
  | None -> invalid_arg "Node_store: freed heap node"

let heap_alloc h ~leaf =
  if h.used = Array.length h.nodes then begin
    let bigger = Array.make (2 * h.used) None in
    Array.blit h.nodes 0 bigger 0 h.used;
    h.nodes <- bigger
  end;
  let node =
    {
      n = 0;
      keys = Array.make fanout 0L;
      vals = Array.make (fanout + 1) 0L;
      next = 0;
      leaf;
    }
  in
  h.nodes.(h.used) <- Some node;
  h.used <- h.used + 1;
  -h.used (* handle of index used-1 *)

let volatile media =
  let h = heap_create () in
  {
    alloc =
      (fun ~leaf ->
        Media.alloc media Media.Dram;
        heap_alloc h ~leaf);
    free = (fun handle -> h.nodes.(-handle - 1) <- None);
    is_leaf = (fun handle -> (heap_get h handle).leaf);
    nkeys = (fun handle -> (heap_get h handle).n);
    set_nkeys = (fun handle n -> (heap_get h handle).n <- n);
    get_key = (fun handle i -> (heap_get h handle).keys.(i));
    set_key = (fun handle i k -> (heap_get h handle).keys.(i) <- k);
    get_val = (fun handle i -> (heap_get h handle).vals.(i));
    set_val = (fun handle i v -> (heap_get h handle).vals.(i) <- v);
    get_next = (fun handle -> (heap_get h handle).next);
    set_next = (fun handle nx -> (heap_get h handle).next <- nx);
    touch = (fun _ -> Media.read media Media.Dram ~off:0 ~len:1);
    persist = (fun _ -> ());
    media;
  }

(* --- Pool backend ------------------------------------------------------- *)

let k_off i = 16 + (8 * i)
let v_off i = 256 + (8 * i)

let pool_backend pool =
  let media = Pool.media pool in
  {
    alloc =
      (fun ~leaf ->
        let off = Alloc.alloc pool node_bytes in
        Pool.fill pool ~off ~len:node_bytes '\000';
        Pool.write_int pool off (if leaf then 1 else 0);
        Pool.persist pool ~off ~len:node_bytes;
        off);
    free = (fun off -> Alloc.free pool ~off ~size:node_bytes);
    is_leaf = (fun off -> Pool.raw_read_int pool off land 1 = 1);
    nkeys = (fun off -> Pool.raw_read_int pool off lsr 8);
    set_nkeys =
      (fun off n ->
        let leaf = Pool.raw_read_int pool off land 1 in
        Pool.write_int pool off ((n lsl 8) lor leaf));
    get_key = (fun off i -> Pool.raw_read_i64 pool (off + k_off i));
    set_key = (fun off i k -> Pool.write_i64 pool (off + k_off i) k);
    get_val = (fun off i -> Pool.raw_read_i64 pool (off + v_off i));
    set_val = (fun off i v -> Pool.write_i64 pool (off + v_off i) v);
    get_next = (fun off -> Pool.raw_read_int pool (off + 8));
    set_next = (fun off nx -> Pool.write_int pool (off + 8) nx);
    touch = (fun off -> Pool.touch_read pool ~off ~len:128);
    persist = (fun off -> Pool.persist pool ~off ~len:node_bytes);
    media;
  }

(* --- Hybrid backend ----------------------------------------------------- *)

(* Dispatch on the handle sign: heap (inner) handles are negative, pool
   (leaf) offsets positive.  Inner nodes never use [next]. *)
let hybrid pool =
  let inner = volatile (Pool.media pool) in
  let leaf = pool_backend pool in
  let pick handle = if handle < 0 then inner else leaf in
  {
    alloc = (fun ~leaf:l -> if l then leaf.alloc ~leaf:true else inner.alloc ~leaf:false);
    free = (fun h -> (pick h).free h);
    is_leaf = (fun h -> h > 0);
    nkeys = (fun h -> (pick h).nkeys h);
    set_nkeys = (fun h n -> (pick h).set_nkeys h n);
    get_key = (fun h i -> (pick h).get_key h i);
    set_key = (fun h i k -> (pick h).set_key h i k);
    get_val = (fun h i -> (pick h).get_val h i);
    set_val = (fun h i v -> (pick h).set_val h i v);
    get_next = (fun h -> (pick h).get_next h);
    set_next = (fun h nx -> (pick h).set_next h nx);
    touch = (fun h -> (pick h).touch h);
    persist = (fun h -> (pick h).persist h);
    media = Pool.media pool;
  }

type placement = Volatile | Persistent | Hybrid

let pp_placement ppf = function
  | Volatile -> Fmt.string ppf "dram"
  | Persistent -> Fmt.string ppf "pmem"
  | Hybrid -> Fmt.string ppf "hybrid"

let make placement ~pool ~media =
  match placement with
  | Volatile -> volatile media
  | Persistent -> pool_backend pool
  | Hybrid -> hybrid pool
