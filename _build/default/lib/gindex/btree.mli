(** B+-tree core over an abstract node store (Section 4.2).

    Keys and values are [int64]; duplicate keys are supported (inserts
    descend by upper bound, searches by lower bound and then scan the
    leaf chain).  Deletion is by (key, value) pair without rebalancing
    (lazy deletion - the index over-approximates and the MVCC layer
    re-checks visibility). *)

type t

val create : Node_store.t -> t
val attach : Node_store.t -> root:int -> first_leaf:int -> count:int -> t
(** Reattach to an existing tree (after recovery). *)

val store : t -> Node_store.t
val root : t -> int
val first_leaf : t -> int
val count : t -> int
val insert : t -> int64 -> int64 -> unit
val remove : t -> int64 -> int64 -> bool
(** Remove one occurrence of the pair; [true] when found. *)

val lookup : t -> int64 -> int64 list
(** All values stored under the key, in insertion-scan order. *)

val iter_range : t -> lo:int64 -> hi:int64 -> (int64 -> int64 -> unit) -> unit
(** All pairs with [lo <= key <= hi], in key order. *)

val iter_all : t -> (int64 -> int64 -> unit) -> unit
val height : t -> int

val rebuild_from_leaves : Node_store.t -> first_leaf:int -> t * int
(** Rebuild the inner levels from the persistent leaf chain - the hybrid
    index recovery fast path (Fig. 8).  Returns the tree and the number
    of leaves walked. *)

val check_invariants : t -> unit
(** Structural validation (sorted keys, separator bounds, uniform leaf
    depth, complete chain); raises [Failure] on violation.  Test use. *)
