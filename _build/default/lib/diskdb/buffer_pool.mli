(** Buffer-pool model for the disk baseline: LRU page frames over a
    simulated SSD.  A miss charges an SSD page read (plus a write-back
    when evicting a dirty frame); even a hit charges the page-cache
    indirection that distinguishes block-oriented engines from direct
    byte-addressing.  Commits append and sync WAL pages. *)

type t

val create :
  ?page_size:int -> ?capacity:int -> ?hit_ns:int -> Pmem.Media.t -> t

val touch : t -> off:int -> rw:[ `R | `W ] -> unit
val wal_commit : t -> bytes:int -> unit
val clear : t -> unit
val stats : t -> int * int * int * int
(** (hits, misses, evictions, wal pages written). *)
