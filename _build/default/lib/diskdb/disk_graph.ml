(* The disk-based baseline engine (Section 7.3, "disk").

   Same record layouts and transaction protocol as the PMem engine, but
   every record access is routed through the block-oriented buffer pool:
   record bytes conceptually live on SSD and are only reachable through
   page frames.  The underlying pool is volatile (its DRAM access costs
   stand for the CPU reading the mapped frame); durability comes from the
   WAL charged at commit.

   [source] wraps an MVCC source so that the identical query plans run
   unmodified against the baseline, with page-touch charges layered on
   every record and property access.  Secondary indexes are DRAM-resident
   (the paper's baseline "created an additional DRAM index"). *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module G = Storage.Graph_store
module L = Storage.Layout
module Value = Storage.Value
module Mvto = Mvcc.Mvto

type t = {
  store : G.t;
  mgr : Mvto.t;
  bp : Buffer_pool.t;
  media : Media.t;
}

(* A disk instance wraps a volatile pool: flushes are free (no PMem), and
   all media cost comes from DRAM line access + buffer-pool charges. *)
let create ?(pool_size = 1 lsl 26) ?buffer_pages () =
  let media = Media.create () in
  let pool = Pool.create ~kind:`Dram ~media ~id:77 ~size:pool_size () in
  let store = G.format pool in
  let bp = Buffer_pool.create ?capacity:buffer_pages media in
  { store; mgr = Mvto.create store; bp; media }

let store t = t.store
let mgr t = t.mgr
let media t = t.media
let buffer_pool t = t.bp

(* cold runs: empty the page cache *)
let drop_caches t = Buffer_pool.clear t.bp

let touch_node t ~rw id = Buffer_pool.touch t.bp ~off:(G.node_off t.store id) ~rw
let touch_rel t ~rw id = Buffer_pool.touch t.bp ~off:(G.rel_off t.store id) ~rw

let touch_node_props t id =
  (* property batches live on their own pages; touch the first batch *)
  let first = G.node_field t.store id L.Node.first_prop in
  match L.unlink first with
  | None -> ()
  | Some pid ->
      Buffer_pool.touch t.bp
        ~off:(Storage.Table.record_off (Storage.Props.table (G.prop_store t.store)) pid)
        ~rw:`R

let touch_rel_props t id =
  let first = G.rel_field t.store id L.Rel.first_prop in
  match L.unlink first with
  | None -> ()
  | Some pid ->
      Buffer_pool.touch t.bp
        ~off:(Storage.Table.record_off (Storage.Props.table (G.prop_store t.store)) pid)
        ~rw:`R

(* Build a query source over one transaction's snapshot, with page-touch
   accounting layered over the MVCC source. *)
let source ?indexes t txn : Query.Source.t =
  let base = Query.Source.of_mvcc ?indexes t.mgr txn in
  let open Query.Source in
  {
    base with
    scan_nodes_chunk =
      (fun ci f ->
        base.scan_nodes_chunk ci (fun id ->
            touch_node t ~rw:`R id;
            f id));
    scan_nodes =
      (fun f ->
        base.scan_nodes (fun id ->
            touch_node t ~rw:`R id;
            f id));
    scan_rels =
      (fun f ->
        base.scan_rels (fun id ->
            touch_rel t ~rw:`R id;
            f id));
    node_exists =
      (fun id ->
        touch_node t ~rw:`R id;
        base.node_exists id);
    node_label =
      (fun id ->
        touch_node t ~rw:`R id;
        base.node_label id);
    rel_label =
      (fun id ->
        touch_rel t ~rw:`R id;
        base.rel_label id);
    node_prop =
      (fun id key ->
        touch_node t ~rw:`R id;
        touch_node_props t id;
        base.node_prop id key);
    rel_prop =
      (fun id key ->
        touch_rel t ~rw:`R id;
        touch_rel_props t id;
        base.rel_prop id key);
    rel_src =
      (fun id ->
        touch_rel t ~rw:`R id;
        base.rel_src id);
    rel_dst =
      (fun id ->
        touch_rel t ~rw:`R id;
        base.rel_dst id);
    out_rels =
      (fun id f ->
        touch_node t ~rw:`R id;
        base.out_rels id (fun rid ->
            touch_rel t ~rw:`R rid;
            f rid));
    in_rels =
      (fun id f ->
        touch_node t ~rw:`R id;
        base.in_rels id (fun rid ->
            touch_rel t ~rw:`R rid;
            f rid));
    index_lookup =
      (fun ~label ~key v f ->
        (* DRAM index probe, then the record page *)
        base.index_lookup ~label ~key v (fun id ->
            touch_node t ~rw:`R id;
            f id));
    index_range =
      (fun ~label ~key ~lo ~hi f ->
        base.index_range ~label ~key ~lo ~hi (fun id ->
            touch_node t ~rw:`R id;
            f id));
    create_node =
      (fun ~label ~props ->
        let id = base.create_node ~label ~props in
        touch_node t ~rw:`W id;
        id);
    create_rel =
      (fun ~label ~src ~dst ~props ->
        let id = base.create_rel ~label ~src ~dst ~props in
        touch_rel t ~rw:`W id;
        touch_node t ~rw:`W src;
        touch_node t ~rw:`W dst;
        id);
    set_node_prop =
      (fun id ~key v ->
        touch_node t ~rw:`W id;
        base.set_node_prop id ~key v);
    set_rel_prop =
      (fun id ~key v ->
        touch_rel t ~rw:`W id;
        base.set_rel_prop id ~key v);
    delete_node =
      (fun id ->
        touch_node t ~rw:`W id;
        base.delete_node id);
    delete_rel =
      (fun id ->
        touch_rel t ~rw:`W id;
        base.delete_rel id);
    node_prop_fast =
      (fun id key ->
        touch_node t ~rw:`R id;
        touch_node_props t id;
        base.node_prop_fast id key);
    rel_prop_fast =
      (fun id key ->
        touch_rel t ~rw:`R id;
        touch_rel_props t id;
        base.rel_prop_fast id key);
    fetch_node =
      (fun ~chunk ~slot ->
        let id = base.fetch_node ~chunk ~slot in
        if id >= 0 then touch_node t ~rw:`R id;
        id);
    rel_visible =
      (fun rid ->
        touch_rel t ~rw:`R rid;
        base.rel_visible rid);
  }

(* Transactional execution with WAL durability: the commit writes one WAL
   page per touched record set (approximated by the write-set size). *)
let with_txn t f =
  let txn = Mvto.begin_txn t.mgr in
  match f txn with
  | v ->
      let wal_bytes =
        128 + List.length (Mvcc.Txn.writes txn) * 256 (* header + per-record redo *)
      in
      Mvto.commit t.mgr txn;
      Buffer_pool.wal_commit t.bp ~bytes:wal_bytes;
      v
  | exception e ->
      if Mvcc.Txn.is_active txn then Mvto.abort t.mgr txn;
      raise e
