(** The disk baseline engine (Section 7.3, "disk").

    Same record layouts and MVTO protocol as the PMem engine, but every
    record access is routed through a block-oriented buffer pool (page
    faults charge SSD reads, hits charge the page-cache indirection), and
    durability comes from write-ahead logging charged at commit.  The
    identical query plans run unmodified against it. *)

type t

val create : ?pool_size:int -> ?buffer_pages:int -> unit -> t
val store : t -> Storage.Graph_store.t
val mgr : t -> Mvcc.Mvto.t
val media : t -> Pmem.Media.t
val buffer_pool : t -> Buffer_pool.t
val drop_caches : t -> unit
(** Empty the page cache: the next runs are cold. *)

val source :
  ?indexes:(label:int -> key:int -> Gindex.Index.t option) ->
  t ->
  Mvcc.Txn.t ->
  Query.Source.t
(** Snapshot source with page-touch accounting layered over every record
    and property access. *)

val with_txn : t -> (Mvcc.Txn.t -> 'a) -> 'a
(** Transactional execution; the commit appends and syncs WAL pages
    sized by the write set. *)
