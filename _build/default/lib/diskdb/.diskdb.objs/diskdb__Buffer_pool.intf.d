lib/diskdb/buffer_pool.mli: Pmem
