lib/diskdb/disk_graph.ml: Buffer_pool List Mvcc Pmem Query Storage
