lib/diskdb/disk_graph.mli: Buffer_pool Gindex Mvcc Pmem Query Storage
