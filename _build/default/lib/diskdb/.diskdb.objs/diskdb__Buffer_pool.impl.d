lib/diskdb/buffer_pool.ml: Hashtbl Mutex Pmem
