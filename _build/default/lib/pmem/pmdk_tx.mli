(** PMDK-style failure-atomic transactions via undo logging (DG4).

    Snapshot ranges with {!add_range} before modifying them; {!commit}
    persists every snapshotted range and invalidates the log with a single
    atomic store.  After a crash, {!recover} rolls back any active log.
    One transaction per pool at a time (serialised on the pool's tx
    mutex). *)

type t

exception Log_full
exception Not_active

val begin_ : Pool.t -> t
val add_range : t -> off:int -> len:int -> unit
(** Snapshot the current contents of the range; must precede modification.
    @raise Log_full when the undo log region overflows. *)

val commit : t -> unit
val abort : t -> unit
(** Roll the snapshotted ranges back immediately. *)

val recover : Pool.t -> bool
(** Roll back an interrupted transaction, if any; [true] when applied. *)

val run : Pool.t -> (t -> 'a) -> 'a
(** [run pool f] wraps [f] in a transaction, aborting on exception. *)
