(* Pool-resident allocator with size classes and free-list reuse (DG5).

   PMem allocations are expensive (C5): every allocation is charged the
   PMDK-like overhead, so higher layers allocate whole chunks and reuse
   record slots via bitmaps instead of allocating per record.

   Pool layout managed here:

     0    magic (u64)
     8    bump pointer (u64)                 - next never-allocated offset
     16   free-list heads (n_classes x u64)  - head of each size class
     176  root directory (64 x u64)          - PMDK-root-like named slots
     1024 undo-log region (Pmdk_tx)
     data_base ...                           - allocatable space

   Failure atomicity: the bump pointer and each free-list head are updated
   with single atomic 8-byte stores.  A crash between linking a freed block
   and updating the head can leak one block (exactly as real allocators
   accept before offline leak detection); it can never double-allocate. *)

let magic = 0x504F534549444F4EL (* "POSEIDON" *)
let min_class_log = 6 (* 64 B *)
let n_classes = 20 (* 64 B .. 32 MiB *)
let bump_off = 8
let heads_off = 16
let roots_off = 176
let n_roots = 64
let log_off = 1024
let log_size = 1_048_576
let data_base = log_off + log_size (* 263168, 4 KiB-ish aligned below *)
let data_base = (data_base + 4095) / 4096 * 4096

exception Out_of_memory of { pool : int; requested : int }

let class_of_size size =
  if size <= 0 then invalid_arg "Alloc.class_of_size";
  let rec go c bytes = if bytes >= size then c else go (c + 1) (bytes * 2) in
  let c = go 0 (1 lsl min_class_log) in
  if c >= n_classes then invalid_arg "Alloc.class_of_size: too large";
  c

let class_bytes c = 1 lsl (min_class_log + c)

let head_off c = heads_off + (8 * c)

let format pool =
  Pool.write_i64 pool 0 magic;
  Pool.write_int pool bump_off data_base;
  for c = 0 to n_classes - 1 do
    Pool.write_int pool (head_off c) 0
  done;
  for r = 0 to n_roots - 1 do
    Pool.write_int pool (roots_off + (8 * r)) 0
  done;
  (* the log region's state word must be durable before first use *)
  Pool.write_int pool log_off 0;
  Pool.persist pool ~off:0 ~len:(roots_off + (8 * n_roots));
  Pool.persist pool ~off:log_off ~len:16

let is_formatted pool = Pool.read_i64 pool 0 = magic

(* Allocate a block of at least [size] bytes; returns its offset.  The
   returned block is always 64-byte aligned and a power-of-two size class,
   so chunk layouts can align records to cache lines (DG3). *)
let alloc pool size =
  let c = class_of_size size in
  let mu = Pool.alloc_mutex pool in
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
  Media.alloc (Pool.media pool) (Pool.device pool);
  let head = Pool.read_int pool (head_off c) in
  if head <> 0 then begin
    (* pop: next pointer lives in the first word of the free block *)
    let next = Pool.read_int pool head in
    Pool.atomic_write_int pool (head_off c) next;
    head
  end
  else begin
    let bump = Pool.read_int pool bump_off in
    let bytes = class_bytes c in
    if bump + bytes > Pool.size pool then
      raise (Out_of_memory { pool = Pool.id pool; requested = bytes });
    Pool.atomic_write_int pool bump_off (bump + bytes);
    bump
  end

let free pool ~off ~size =
  let c = class_of_size size in
  let mu = Pool.alloc_mutex pool in
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
  Media.free (Pool.media pool) (Pool.device pool);
  let head = Pool.read_int pool (head_off c) in
  (* link first, persist, then swing the head: a crash in between leaks
     [off] but never corrupts the list *)
  Pool.write_int pool off head;
  Pool.persist pool ~off ~len:8;
  Pool.atomic_write_int pool (head_off c) off

(* Named persistent roots (like PMDK's root object): fixed slots that let
   higher layers find their table directories after a restart. *)

let set_root pool slot v =
  if slot < 0 || slot >= n_roots then invalid_arg "Alloc.set_root";
  Pool.atomic_write_int pool (roots_off + (8 * slot)) v

let get_root pool slot =
  if slot < 0 || slot >= n_roots then invalid_arg "Alloc.get_root";
  Pool.read_int pool (roots_off + (8 * slot))

let bump_value pool = Pool.read_int pool bump_off

let free_list_length pool c =
  let rec go off n = if off = 0 then n else go (Pool.read_int pool off) (n + 1) in
  go (Pool.read_int pool (head_off c)) 0
