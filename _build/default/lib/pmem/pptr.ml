(* Persistent pointers, as introduced by PMDK (C6).

   A persistent pointer is a 16-byte (pool id, offset) pair that stays valid
   across restarts.  Dereferencing requires a pool-registry lookup and is
   charged extra ([Media.pptr_deref]); the storage layer therefore follows
   DG6 and uses plain 8-byte offsets wherever the pool is implied, keeping
   persistent pointers only for cross-chunk links that must be
   self-describing. *)

type t = { pool : int; off : int }

let null = { pool = -1; off = -1 }
let is_null p = p.pool < 0
let v ~pool ~off = { pool; off }
let pool t = t.pool
let off t = t.off

let size = 16

(* Registry mapping pool ids to open pools, rebuilt at application start
   (per DG6, persistent pointers are resolved once during restart). *)
type registry = (int, Pool.t) Hashtbl.t

let registry_create () : registry = Hashtbl.create 8
let register (r : registry) pool = Hashtbl.replace r (Pool.id pool) pool
let unregister (r : registry) pool = Hashtbl.remove r (Pool.id pool)

exception Dangling of t

let deref (r : registry) t =
  match Hashtbl.find_opt r t.pool with
  | None -> raise (Dangling t)
  | Some pool ->
      Media.pptr_deref (Pool.media pool);
      (pool, t.off)

let store pool ~at t =
  Pool.write_i64 pool at (Int64.of_int t.pool);
  Pool.write_i64 pool (at + 8) (Int64.of_int t.off)

let load pool ~at =
  let pid = Pool.read_int pool at and off = Pool.read_int pool (at + 8) in
  { pool = pid; off }

let equal a b = a.pool = b.pool && a.off = b.off
let pp ppf t =
  if is_null t then Fmt.string ppf "pptr:null"
  else Fmt.pf ppf "pptr:%d@%d" t.pool t.off
