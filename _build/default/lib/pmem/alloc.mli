(** Pool-resident allocator with size classes and free-list reuse (DG5).

    Allocations are charged the PMem allocation overhead (C5); higher
    layers therefore allocate whole chunks and recycle record slots through
    bitmaps rather than allocating per record. *)

exception Out_of_memory of { pool : int; requested : int }

val n_classes : int
val class_of_size : int -> int
(** Smallest size class holding [size] bytes. *)

val class_bytes : int -> int
val log_off : int
(** Offset of the undo-log region reserved for {!Pmdk_tx}. *)

val log_size : int
val data_base : int
(** First allocatable offset. *)

val format : Pool.t -> unit
(** Initialise allocator metadata in a fresh pool. *)

val is_formatted : Pool.t -> bool

val alloc : Pool.t -> int -> int
(** Allocate a block of at least the given size; 64-byte aligned.
    @raise Out_of_memory when the pool is exhausted. *)

val free : Pool.t -> off:int -> size:int -> unit

val n_roots : int
val set_root : Pool.t -> int -> int -> unit
(** Store a named persistent root offset (failure-atomically). *)

val get_root : Pool.t -> int -> int
val bump_value : Pool.t -> int
val free_list_length : Pool.t -> int -> int
