(** Persistent pointers (16-byte pool-id/offset pairs), as in PMDK (C6).

    Dereferencing goes through a registry and is charged extra, which is why
    the storage layer prefers 8-byte offsets (DG6). *)

type t

val null : t
val is_null : t -> bool
val v : pool:int -> off:int -> t
val pool : t -> int
val off : t -> int
val size : int
(** Stored size in bytes (16). *)

type registry

val registry_create : unit -> registry
val register : registry -> Pool.t -> unit
val unregister : registry -> Pool.t -> unit

exception Dangling of t

val deref : registry -> t -> Pool.t * int
(** Resolve to an open pool and offset, charging the translation cost.
    @raise Dangling if the pool is not registered. *)

val store : Pool.t -> at:int -> t -> unit
val load : Pool.t -> at:int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
