lib/pmem/media.mli: Format
