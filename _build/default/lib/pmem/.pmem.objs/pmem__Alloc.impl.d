lib/pmem/alloc.ml: Fun Media Mutex Pool
