lib/pmem/pool.mli: Bytes Media Mutex Random
