lib/pmem/pool.ml: Bytes Int32 Int64 Media Mutex Random
