lib/pmem/pmdk_tx.ml: Alloc Array Hashtbl List Mutex Pool
