lib/pmem/media.ml: Atomic Domain Fmt Hashtbl List Mutex Sys
