lib/pmem/pptr.mli: Format Pool
