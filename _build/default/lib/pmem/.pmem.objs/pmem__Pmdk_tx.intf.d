lib/pmem/pmdk_tx.mli: Pool
