lib/pmem/alloc.mli: Pool
