lib/pmem/pptr.ml: Fmt Hashtbl Int64 Media Pool
