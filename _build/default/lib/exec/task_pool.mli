(** Morsel-driven task pool (Section 6.1).

    Worker domains pull tasks from a shared queue; scans are split into
    chunk morsels and submitted here.  When created with a [media], each
    worker installs a per-domain meter so simulated work can be
    attributed per worker. *)

type t

val create : ?media:Pmem.Media.t -> nworkers:int -> unit -> t
val size : t -> int
val submit_all : t -> (unit -> unit) list -> unit
val wait : t -> unit
(** Wait for all outstanding tasks; re-raises the first task exception. *)

val run : t -> (unit -> unit) list -> unit
(** {!submit_all} + {!wait}. *)

val shutdown : t -> unit
(** Stop and join all workers. *)

val parallel_ranges : t -> n:int -> grain:int -> (int -> int -> unit) -> unit
(** Run [f lo hi] over [0, n) split into morsels of [grain] items. *)
