lib/exec/task_pool.mli: Pmem
