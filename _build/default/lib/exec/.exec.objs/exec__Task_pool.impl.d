lib/exec/task_pool.ml: Condition Domain List Mutex Pmem Queue
