(** Abstract graph access for query execution.

    Both engines (AOT interpreter and JIT) and all storage backends (the
    PMem/DRAM MVCC store and the disk baseline) meet at this record of
    operations.  All ids delivered by scans/traversals are already
    visibility-filtered for the calling transaction's snapshot; strings
    never cross the interface at query time - labels, property keys and
    string values are dictionary codes (DD3). *)

module Value = Storage.Value

type t = {
  node_chunks : unit -> int;  (** number of morsel units *)
  scan_nodes_chunk : int -> (int -> unit) -> unit;
  scan_nodes : (int -> unit) -> unit;
  scan_rels : (int -> unit) -> unit;
  node_exists : int -> bool;
  node_label : int -> int;
  rel_label : int -> int;
  node_prop : int -> int -> Value.t option;
  rel_prop : int -> int -> Value.t option;
  rel_src : int -> int;
  rel_dst : int -> int;
  out_rels : int -> (int -> unit) -> unit;
  in_rels : int -> (int -> unit) -> unit;
  index_lookup : label:int -> key:int -> Value.t -> (int -> unit) -> unit;
  index_range :
    label:int -> key:int -> lo:Value.t -> hi:Value.t -> (int -> unit) -> unit;
  create_node : label:int -> props:(int * Value.t) list -> int;
  create_rel :
    label:int -> src:int -> dst:int -> props:(int * Value.t) list -> int;
  set_node_prop : int -> key:int -> Value.t -> unit;
  set_rel_prop : int -> key:int -> Value.t -> unit;
  delete_node : int -> unit;
      (** DETACH semantics: incident visible relationships are deleted in
          the same transaction *)
  delete_rel : int -> unit;
  encode : string -> int;
  decode : int -> string;
  chunk_size : unit -> int;
  node_prop_fast : int -> int -> Value.t option;
      (** single-property read without view materialisation (JIT path) *)
  rel_prop_fast : int -> int -> Value.t option;
  fetch_node : chunk:int -> slot:int -> int;
      (** pull-style cursor for generated code; -1 = empty/invisible *)
  first_out : int -> int;
  next_src : int -> int;
  first_in : int -> int;
  next_dst : int -> int;
  rel_visible : int -> bool;
}

exception No_index of { label : int; key : int }

val of_mvcc :
  ?indexes:(label:int -> key:int -> Gindex.Index.t option) ->
  Mvcc.Mvto.t ->
  Mvcc.Txn.t ->
  t
(** Source over one transaction's snapshot of the MVCC store. *)
