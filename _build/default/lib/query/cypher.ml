(* A Cypher-like query language (Section 1: "we support Cypher-like
   navigational queries"), compiled to the graph algebra.

   Supported surface:

     MATCH (p:Person {id: $0})-[k:KNOWS]->(f:Person)
     WHERE f.age > 30 AND NOT f.name = 'Bob'
     RETURN f.name, f.age, count( * )
     ORDER BY f.age DESC
     LIMIT 10

     CREATE (p:Person {name: 'Ada', age: 36})

     MATCH (a:Person {id: $0}), (b:Person {id: $1})
     CREATE (a)-[:KNOWS {since: 2020}]->(b)

     MATCH (p:Person {id: $0}) SET p.age = 37
     MATCH (p:Person {id: $0}) DETACH DELETE p   (single node)

   - node patterns: (var[:Label] [{key: literal|$param, ...}])
   - relationships: -[var?:LABEL]-> or <-[var?:LABEL]- (one hop each)
   - a second comma-separated MATCH pattern may bind additional single
     nodes (fetched by property lookup), enabling CREATE between them
   - literals: integers, single-quoted strings, true/false, null
   - parameters: $0, $1, ... (positional)

   Planning: the first node pattern becomes the access path (an
   IndexScan when [indexed] approves the (label, key) pair, otherwise a
   filtered NodeScan); each hop becomes Expand + EndPoint (+ label
   filter); property constraints and WHERE become Filters; RETURN becomes
   Project (or CountAgg); ORDER BY sorts before projection so keys can
   reference pattern variables. *)

module Value = Storage.Value
module A = Algebra
module E = Expr

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- Lexer ------------------------------------------------------------- *)

type token =
  | IDENT of string (* bare identifier, original case *)
  | KW of string (* recognised keyword, uppercased *)
  | INT of int
  | STRING of string
  | PARAM of int
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COLON | COMMA | DOT
  | DASH | ARROW_R (* -> *) | ARROW_L (* <- *)
  | EQ | NE | LT | LE | GT | GE
  | STAR
  | EOF

let keywords =
  [ "MATCH"; "WHERE"; "RETURN"; "ORDER"; "BY"; "LIMIT"; "ASC"; "DESC";
    "AND"; "OR"; "NOT"; "CREATE"; "SET"; "DELETE"; "DETACH"; "COUNT";
    "DISTINCT"; "TRUE"; "FALSE"; "NULL" ]

let lex (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '(' then (push LPAREN; incr i)
    else if c = ')' then (push RPAREN; incr i)
    else if c = '{' then (push LBRACE; incr i)
    else if c = '}' then (push RBRACE; incr i)
    else if c = '[' then (push LBRACKET; incr i)
    else if c = ']' then (push RBRACKET; incr i)
    else if c = ':' then (push COLON; incr i)
    else if c = ',' then (push COMMA; incr i)
    else if c = '.' then (push DOT; incr i)
    else if c = '*' then (push STAR; incr i)
    else if c = '-' then
      if peek 1 = Some '>' then (push ARROW_R; i := !i + 2)
      else (push DASH; incr i)
    else if c = '<' then
      if peek 1 = Some '-' then (push ARROW_L; i := !i + 2)
      else if peek 1 = Some '=' then (push LE; i := !i + 2)
      else if peek 1 = Some '>' then (push NE; i := !i + 2)
      else (push LT; incr i)
    else if c = '>' then
      if peek 1 = Some '=' then (push GE; i := !i + 2) else (push GT; incr i)
    else if c = '=' then (push EQ; incr i)
    else if c = '!' && peek 1 = Some '=' then (push NE; i := !i + 2)
    else if c = '$' then begin
      incr i;
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      if !j = !i then fail "parameter must be positional, e.g. $0";
      push (PARAM (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if c = '\'' then begin
      incr i;
      let b = Buffer.create 8 in
      let closed = ref false in
      while not !closed do
        if !i >= n then fail "unterminated string literal";
        if s.[!i] = '\'' then closed := true
        else Buffer.add_char b s.[!i];
        incr i
      done;
      push (STRING (Buffer.contents b))
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      push (INT (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      let word_char c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c = '_'
      in
      while !j < n && word_char s.[!j] do incr j done;
      let w = String.sub s !i (!j - !i) in
      let upper = String.uppercase_ascii w in
      if List.mem upper keywords then push (KW upper) else push (IDENT w);
      i := !j
    end
    else fail "unexpected character %c" c
  done;
  List.rev (EOF :: !toks)

(* --- AST ---------------------------------------------------------------- *)

type lit = LInt of int | LStr of string | LBool of bool | LNull | LParam of int

type node_pat = {
  np_var : string option;
  np_label : string option;
  np_props : (string * lit) list;
}

type hop = {
  h_var : string option;
  h_label : string option;
  h_out : bool; (* -[]-> vs <-[]- *)
  h_dst : node_pat;
}

type pattern = { p_start : node_pat; p_hops : hop list }

type wexpr =
  | WCmp of E.cmp * operand * operand
  | WAnd of wexpr * wexpr
  | WOr of wexpr * wexpr
  | WNot of wexpr

and operand = OProp of string * string | OLit of lit

type ret_item = RProp of string * string | RVar of string | RCount

type order = (string * string * [ `Asc | `Desc ]) list (* var, prop, dir *)

type update =
  | UCreateNode of node_pat
  | UCreateRel of string * string option * string (* src var, label, dst var *) * (string * lit) list
  | USet of string * string * lit
  | UDelete of string

type query = {
  q_patterns : pattern list;
  q_where : wexpr option;
  q_return : ret_item list;
  q_distinct : bool;
  q_order : order;
  q_limit : int option;
  q_updates : update list;
}

(* --- Parser -------------------------------------------------------------- *)

type pstate = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st t what =
  if peek st = t then advance st else fail "expected %s" what

let parse_lit st =
  match peek st with
  | INT i -> advance st; LInt i
  | STRING s -> advance st; LStr s
  | PARAM p -> advance st; LParam p
  | KW "TRUE" -> advance st; LBool true
  | KW "FALSE" -> advance st; LBool false
  | KW "NULL" -> advance st; LNull
  | _ -> fail "expected literal or parameter"

let parse_props st =
  if peek st <> LBRACE then []
  else begin
    advance st;
    let rec items acc =
      match peek st with
      | RBRACE -> advance st; List.rev acc
      | IDENT k ->
          advance st;
          expect st COLON "':'";
          let v = parse_lit st in
          let acc = (k, v) :: acc in
          if peek st = COMMA then (advance st; items acc)
          else (expect st RBRACE "'}'"; List.rev acc)
      | _ -> fail "expected property key"
    in
    items []
  end

let parse_node_pat st =
  expect st LPAREN "'('";
  let var = match peek st with IDENT v -> advance st; Some v | _ -> None in
  let label =
    if peek st = COLON then begin
      advance st;
      match peek st with
      | IDENT l -> advance st; Some l
      | _ -> fail "expected label after ':'"
    end
    else None
  in
  let props = parse_props st in
  expect st RPAREN "')'";
  { np_var = var; np_label = label; np_props = props }

let parse_rel_spec st =
  (* handles the bracket part of -[v:LABEL {k: v}]-> ; bare -- allowed *)
  if peek st = LBRACKET then begin
    advance st;
    let var = match peek st with IDENT v -> advance st; Some v | _ -> None in
    let label =
      if peek st = COLON then begin
        advance st;
        match peek st with
        | IDENT l | KW l -> advance st; Some l
        | _ -> fail "expected relationship label"
      end
      else None
    in
    let props = parse_props st in
    expect st RBRACKET "']'";
    (var, label, props)
  end
  else (None, None, [])

let rec parse_pattern st =
  let start = parse_node_pat st in
  let rec hops acc =
    match peek st with
    | DASH ->
        advance st;
        let var, label, _props = parse_rel_spec st in
        (match peek st with
        | ARROW_R ->
            advance st;
            let dst = parse_node_pat st in
            hops ({ h_var = var; h_label = label; h_out = true; h_dst = dst } :: acc)
        | DASH ->
            (* undirected --; treat as outgoing *)
            advance st;
            let dst = parse_node_pat st in
            hops ({ h_var = var; h_label = label; h_out = true; h_dst = dst } :: acc)
        | _ -> fail "expected '->' or '-' after relationship")
    | ARROW_L ->
        advance st;
        let var, label, _props = parse_rel_spec st in
        expect st DASH "'-'";
        let dst = parse_node_pat st in
        hops ({ h_var = var; h_label = label; h_out = false; h_dst = dst } :: acc)
    | _ -> List.rev acc
  in
  { p_start = start; p_hops = hops [] }

and parse_patterns st =
  let p = parse_pattern st in
  if peek st = COMMA then begin
    advance st;
    p :: parse_patterns st
  end
  else [ p ]

let parse_operand st =
  match peek st with
  | IDENT v -> (
      advance st;
      match peek st with
      | DOT -> (
          advance st;
          match peek st with
          | IDENT p -> advance st; OProp (v, p)
          | _ -> fail "expected property name after '.'")
      | _ -> fail "bare variables are not valid comparison operands")
  | _ -> OLit (parse_lit st)

let parse_cmp st =
  let a = parse_operand st in
  let op =
    match peek st with
    | EQ -> E.Eq | NE -> E.Ne | LT -> E.Lt | LE -> E.Le | GT -> E.Gt | GE -> E.Ge
    | _ -> fail "expected comparison operator"
  in
  advance st;
  let b = parse_operand st in
  WCmp (op, a, b)

let rec parse_wexpr st = parse_or st

and parse_or st =
  let l = parse_and st in
  if peek st = KW "OR" then begin
    advance st;
    WOr (l, parse_or st)
  end
  else l

and parse_and st =
  let l = parse_not st in
  if peek st = KW "AND" then begin
    advance st;
    WAnd (l, parse_and st)
  end
  else l

and parse_not st =
  if peek st = KW "NOT" then begin
    advance st;
    WNot (parse_not st)
  end
  else if peek st = LPAREN then begin
    advance st;
    let e = parse_wexpr st in
    expect st RPAREN "')'";
    e
  end
  else parse_cmp st

let parse_return_items st =
  let item () =
    match peek st with
    | KW "COUNT" ->
        advance st;
        expect st LPAREN "'('";
        expect st STAR "'*'";
        expect st RPAREN "')'";
        RCount
    | IDENT v -> (
        advance st;
        match peek st with
        | DOT -> (
            advance st;
            match peek st with
            | IDENT p -> advance st; RProp (v, p)
            | _ -> fail "expected property after '.'")
        | _ -> RVar v)
    | _ -> fail "expected return item"
  in
  let rec go acc =
    let acc = item () :: acc in
    if peek st = COMMA then (advance st; go acc) else List.rev acc
  in
  go []

let parse st : query =
  let patterns = ref [] in
  let where = ref None in
  let updates = ref [] in
  let ret = ref [] in
  let distinct = ref false in
  let order = ref [] in
  let limit = ref None in
  let rec clauses () =
    match peek st with
    | KW "MATCH" ->
        advance st;
        patterns := !patterns @ parse_patterns st;
        clauses ()
    | KW "WHERE" ->
        advance st;
        where := Some (parse_wexpr st);
        clauses ()
    | KW "CREATE" ->
        advance st;
        (* CREATE (n:L {..}) or CREATE (a)-[:R {..}]->(b) *)
        let np = parse_node_pat st in
        (match peek st with
        | DASH | ARROW_L ->
            let out = peek st = DASH in
            advance st;
            let _, label, props = parse_rel_spec st in
            let label =
              match label with
              | Some l -> l
              | None -> fail "CREATE relationship needs a label"
            in
            (if out then expect st ARROW_R "'->'" else expect st DASH "'-'");
            let dst = parse_node_pat st in
            let v np =
              match np.np_var with
              | Some v -> v
              | None -> fail "CREATE relationship endpoints must be bound variables"
            in
            let src_v, dst_v = if out then (v np, v dst) else (v dst, v np) in
            updates := !updates @ [ UCreateRel (src_v, Some label, dst_v, props) ]
        | _ -> updates := !updates @ [ UCreateNode np ]);
        clauses ()
    | KW "SET" ->
        advance st;
        (match peek st with
        | IDENT v -> (
            advance st;
            expect st DOT "'.'";
            match peek st with
            | IDENT p ->
                advance st;
                expect st EQ "'='";
                let value = parse_lit st in
                updates := !updates @ [ USet (v, p, value) ]
            | _ -> fail "expected property after '.'")
        | _ -> fail "expected variable after SET");
        clauses ()
    | KW "DETACH" ->
        advance st;
        expect st (KW "DELETE") "DELETE";
        (match peek st with
        | IDENT v ->
            advance st;
            updates := !updates @ [ UDelete v ]
        | _ -> fail "expected variable after DELETE");
        clauses ()
    | KW "DELETE" ->
        advance st;
        (match peek st with
        | IDENT v ->
            advance st;
            updates := !updates @ [ UDelete v ]
        | _ -> fail "expected variable after DELETE");
        clauses ()
    | KW "RETURN" ->
        advance st;
        if peek st = KW "DISTINCT" then begin
          advance st;
          distinct := true
        end;
        ret := parse_return_items st;
        clauses ()
    | KW "ORDER" ->
        advance st;
        expect st (KW "BY") "BY";
        let rec keys () =
          match peek st with
          | IDENT v -> (
              advance st;
              expect st DOT "'.'";
              match peek st with
              | IDENT p ->
                  advance st;
                  let dir =
                    match peek st with
                    | KW "DESC" -> advance st; `Desc
                    | KW "ASC" -> advance st; `Asc
                    | _ -> `Asc
                  in
                  order := !order @ [ (v, p, dir) ];
                  if peek st = COMMA then (advance st; keys ())
              | _ -> fail "expected property in ORDER BY")
          | _ -> fail "expected variable in ORDER BY"
        in
        keys ();
        clauses ()
    | KW "LIMIT" ->
        advance st;
        (match peek st with
        | INT n -> advance st; limit := Some n
        | _ -> fail "expected integer after LIMIT");
        clauses ()
    | EOF -> ()
    | _ -> fail "unexpected token"
  in
  clauses ();
  {
    q_patterns = !patterns;
    q_where = !where;
    q_return = !ret;
    q_distinct = !distinct;
    q_order = !order;
    q_limit = !limit;
    q_updates = !updates;
  }

(* --- Planner ------------------------------------------------------------- *)

(* variable environment: name -> (tuple slot, kind) *)
type env = (string * (int * E.kind)) list

let lit_expr encode = function
  | LInt i -> E.Const (Value.Int i)
  | LStr s -> E.Const (Value.Str (encode s))
  | LBool b -> E.Const (Value.Bool b)
  | LNull -> E.Const Value.Null
  | LParam p -> E.Param p

let slot_of env v =
  match List.assoc_opt v env with
  | Some (slot, kind) -> (slot, kind)
  | None -> fail "unbound variable %s" v

(* Compile a query against a source's dictionary.  [indexed] tells the
   planner which (label code, key code) pairs have a secondary index. *)
let plan ?(indexed = fun ~label:_ ~key:_ -> false) (g : Source.t) (q : query) :
    A.plan =
  let encode = g.Source.encode in
  let width = ref 0 in
  let fresh_slot () =
    let s = !width in
    incr width;
    s
  in
  let env : env ref = ref [] in
  let bind np slot =
    match np.np_var with
    | Some v -> env := (v, (slot, E.KNode)) :: !env
    | None -> ()
  in
  let bind_rel h slot =
    match h.h_var with
    | Some v -> env := (v, (slot, E.KRel)) :: !env
    | None -> ()
  in
  let prop_filter ~slot props child =
    List.fold_left
      (fun child (k, v) ->
        A.Filter
          {
            pred =
              E.Cmp
                ( E.Eq,
                  E.Prop { col = slot; kind = E.KNode; key = encode k },
                  lit_expr encode v );
            child;
          })
      child props
  in
  (* access path for the first node of a pattern *)
  let access_path np =
    let slot = fresh_slot () in
    bind np slot;
    let plan =
      match (np.np_label, np.np_props) with
      | Some l, (k, v) :: rest when indexed ~label:(encode l) ~key:(encode k) ->
          prop_filter ~slot rest
            (A.IndexScan
               { label = encode l; key = encode k; value = lit_expr encode v })
      | Some l, props ->
          prop_filter ~slot props (A.NodeScan { label = Some (encode l) })
      | None, props -> prop_filter ~slot props (A.NodeScan { label = None })
    in
    plan
  in
  (* secondary pattern nodes fetched mid-pipeline *)
  let attach_node np child =
    let slot = fresh_slot () in
    bind np slot;
    match (np.np_label, np.np_props) with
    | Some l, (k, v) :: rest when indexed ~label:(encode l) ~key:(encode k) ->
        prop_filter ~slot rest
          (A.AttachByIndex
             { label = encode l; key = encode k; value = lit_expr encode v; child })
    | _ ->
        fail "additional MATCH patterns must look up an indexed property"
  in
  let hop child h ~src_slot =
    let rel_slot = fresh_slot () in
    bind_rel h rel_slot;
    let child =
      A.Expand
        {
          col = src_slot;
          dir = (if h.h_out then A.Out else A.In);
          label = Option.map encode h.h_label;
          child;
        }
    in
    let node_slot = fresh_slot () in
    bind h.h_dst node_slot;
    let child =
      A.EndPoint { col = rel_slot; which = (if h.h_out then `Dst else `Src); child }
    in
    let child =
      match h.h_dst.np_label with
      | Some l ->
          A.Filter
            {
              pred =
                E.Cmp
                  ( E.Eq,
                    E.LabelOf { col = node_slot; kind = E.KNode },
                    E.Const (Value.Str (encode l)) );
              child;
            }
      | None -> child
    in
    prop_filter ~slot:node_slot h.h_dst.np_props child
  in
  (* 1. patterns *)
  let base =
    match q.q_patterns with
    | [] ->
        if q.q_updates = [] then fail "query has neither MATCH nor CREATE";
        A.Unit
    | first :: rest ->
        let p0 = access_path first.p_start in
        let plan =
          List.fold_left
            (fun child h ->
              let src_slot =
                (* the hop source is the most recently bound node *)
                !width - 1
              in
              hop child h ~src_slot)
            p0 first.p_hops
        in
        (* additional patterns: single-node lookups *)
        List.fold_left
          (fun child p ->
            if p.p_hops <> [] then
              fail "only the first MATCH pattern may contain relationships";
            attach_node p.p_start child)
          plan rest
  in
  (* fix hop chaining: sources must be the previous node slot, which the
     fold above guarantees because slots grow monotonically *)
  (* 2. WHERE *)
  let rec wexpr = function
    | WCmp (op, a, b) -> E.Cmp (op, operand a, operand b)
    | WAnd (a, b) -> E.And (wexpr a, wexpr b)
    | WOr (a, b) -> E.Or (wexpr a, wexpr b)
    | WNot a -> E.Not (wexpr a)
  and operand = function
    | OProp (v, p) ->
        let slot, kind = slot_of !env v in
        E.Prop { col = slot; kind; key = encode p }
    | OLit l -> lit_expr encode l
  in
  let planned =
    match q.q_where with
    | None -> base
    | Some w -> A.Filter { pred = wexpr w; child = base }
  in
  (* 3. updates *)
  let planned =
    List.fold_left
      (fun child u ->
        match u with
        | UCreateNode np ->
            let slot = fresh_slot () in
            bind np slot;
            let label =
              match np.np_label with
              | Some l -> encode l
              | None -> fail "CREATE node needs a label"
            in
            A.CreateNode
              {
                label;
                props =
                  List.map (fun (k, v) -> (encode k, lit_expr encode v)) np.np_props;
                child;
              }
        | UCreateRel (src, label, dst, props) ->
            let src_slot, _ = slot_of !env src in
            let dst_slot, _ = slot_of !env dst in
            let _ = fresh_slot () in
            A.CreateRel
              {
                label = encode (Option.get label);
                src = src_slot;
                dst = dst_slot;
                props =
                  List.map (fun (k, v) -> (encode k, lit_expr encode v)) props;
                child;
              }
        | USet (v, p, value) ->
            let slot, kind = slot_of !env v in
            let key = encode p in
            let value = lit_expr encode value in
            (match kind with
            | E.KNode -> A.SetNodeProp { col = slot; key; value; child }
            | E.KRel -> A.SetRelProp { col = slot; key; value; child })
        | UDelete v ->
            let slot, kind = slot_of !env v in
            (match kind with
            | E.KNode -> A.DeleteNode { col = slot; child }
            | E.KRel -> A.DeleteRel { col = slot; child }))
      planned q.q_updates
  in
  (* 4. ORDER BY (pre-projection, so keys can use pattern variables) *)
  let planned =
    if q.q_order = [] then planned
    else
      A.Sort
        {
          keys =
            List.map
              (fun (v, p, dir) ->
                let slot, kind = slot_of !env v in
                (E.Prop { col = slot; kind; key = encode p }, dir))
              q.q_order;
          child = planned;
        }
  in
  let planned =
    match q.q_limit with None -> planned | Some n -> A.Limit { n; child = planned }
  in
  (* 5. RETURN *)
  let planned =
    match q.q_return with
    | [] -> planned
    | [ RCount ] -> A.CountAgg { child = planned }
    | items ->
        let exprs =
          List.map
            (function
              | RCount -> fail "count(*) cannot be mixed with other return items"
              | RVar v ->
                  let slot, _ = slot_of !env v in
                  E.Col slot
              | RProp (v, p) ->
                  let slot, kind = slot_of !env v in
                  E.Prop { col = slot; kind; key = encode p })
            items
        in
        A.Project { exprs; child = planned }
  in
  if q.q_distinct then A.Distinct { child = planned } else planned

(* --- Public API ------------------------------------------------------------ *)

let parse_string (s : string) : query =
  let st = { toks = lex s } in
  parse st

let compile ?indexed g s = plan ?indexed g (parse_string s)

(* Parse, plan and run in one go. *)
let run ?indexed ?pool (g : Source.t) ~params (s : string) =
  Interp.run ?pool g ~params (compile ?indexed g s)
