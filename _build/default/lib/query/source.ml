(* Abstract graph access for query execution.

   Both engines (AOT interpreter and JIT) and all storage backends (the
   PMem/DRAM MVCC store and the disk baseline) meet at this interface.
   All ids are *visible* ids under the caller's snapshot: implementations
   apply their own visibility filtering.

   Strings never cross this interface at query time: labels, property keys
   and string values are dictionary codes (DD3). *)

module Value = Storage.Value

type t = {
  (* scans *)
  node_chunks : unit -> int; (* number of morsel units *)
  scan_nodes_chunk : int -> (int -> unit) -> unit;
  scan_nodes : (int -> unit) -> unit;
  scan_rels : (int -> unit) -> unit;
  (* point access *)
  node_exists : int -> bool;
  node_label : int -> int;
  rel_label : int -> int;
  node_prop : int -> int -> Value.t option;
  rel_prop : int -> int -> Value.t option;
  rel_src : int -> int;
  rel_dst : int -> int;
  (* traversal (DD4: offset chains) *)
  out_rels : int -> (int -> unit) -> unit;
  in_rels : int -> (int -> unit) -> unit;
  (* secondary indexes; raise Not_found when no suitable index exists *)
  index_lookup : label:int -> key:int -> Value.t -> (int -> unit) -> unit;
  index_range : label:int -> key:int -> lo:Value.t -> hi:Value.t -> (int -> unit) -> unit;
  (* updates (transactional on MVCC backends) *)
  create_node : label:int -> props:(int * Value.t) list -> int;
  create_rel : label:int -> src:int -> dst:int -> props:(int * Value.t) list -> int;
  set_node_prop : int -> key:int -> Value.t -> unit;
  set_rel_prop : int -> key:int -> Value.t -> unit;
  delete_node : int -> unit;
  delete_rel : int -> unit;
  (* dictionary *)
  encode : string -> int;
  decode : int -> string;
  (* pull-style accessors for generated (JIT) code: loops over integer
     cursors instead of callback iterators; -1 means "none" *)
  chunk_size : unit -> int;
  node_prop_fast : int -> int -> Value.t option;
      (* single-property read without view materialisation; same snapshot
         semantics as [node_prop] *)
  rel_prop_fast : int -> int -> Value.t option;
  fetch_node : chunk:int -> slot:int -> int; (* visible node id or -1 *)
  first_out : int -> int; (* first outgoing rel id or -1 (raw chain) *)
  next_src : int -> int;
  first_in : int -> int;
  next_dst : int -> int;
  rel_visible : int -> bool;
}

exception No_index of { label : int; key : int }

(* Build a source over the MVCC store for one transaction's snapshot.
   [indexes] maps (label code, property-key code) to a secondary index. *)
let of_mvcc ?(indexes = fun ~label:_ ~key:_ -> None) mgr txn : t =
  let g = Mvcc.Mvto.store mgr in
  let module G = Storage.Graph_store in
  let module V = Mvcc.Version in
  let module L = Storage.Layout in
  let prop_of_view view key = Mvcc.Mvto.view_prop view key in
  let need_index ~label ~key =
    match indexes ~label ~key with
    | Some idx -> idx
    | None -> raise (No_index { label; key })
  in
  {
    node_chunks = (fun () -> G.node_chunks g);
    scan_nodes_chunk = (fun ci f -> Mvcc.Mvto.scan_nodes_chunk mgr txn ci f);
    scan_nodes = (fun f -> Mvcc.Mvto.scan_nodes mgr txn f);
    scan_rels = (fun f -> Mvcc.Mvto.scan_rels mgr txn f);
    node_exists = (fun id -> Mvcc.Mvto.visible mgr txn (V.Node, id));
    node_label = (fun id -> G.node_label g id);
    rel_label = (fun id -> G.rel_label g id);
    node_prop =
      (fun id key ->
        match Mvcc.Mvto.read_node mgr txn id with
        | None -> None
        | Some view -> prop_of_view view key);
    rel_prop =
      (fun id key ->
        match Mvcc.Mvto.read_rel mgr txn id with
        | None -> None
        | Some view -> prop_of_view view key);
    rel_src = (fun id -> G.rel_field g id L.Rel.src);
    rel_dst = (fun id -> G.rel_field g id L.Rel.dst);
    out_rels =
      (fun id f ->
        G.iter_out g id (fun rid ->
            if Mvcc.Mvto.visible mgr txn (V.Rel, rid) then f rid));
    in_rels =
      (fun id f ->
        G.iter_in g id (fun rid ->
            if Mvcc.Mvto.visible mgr txn (V.Rel, rid) then f rid));
    index_lookup =
      (fun ~label ~key value f ->
        let idx = need_index ~label ~key in
        List.iter
          (fun id -> if Mvcc.Mvto.visible mgr txn (V.Node, id) then f id)
          (Gindex.Index.lookup idx value));
    index_range =
      (fun ~label ~key ~lo ~hi f ->
        let idx = need_index ~label ~key in
        Gindex.Index.iter_range idx ~lo ~hi (fun id ->
            if Mvcc.Mvto.visible mgr txn (V.Node, id) then f id));
    create_node =
      (fun ~label ~props -> Mvcc.Mvto.insert_node mgr txn ~label ~props);
    create_rel =
      (fun ~label ~src ~dst ~props ->
        Mvcc.Mvto.insert_rel mgr txn ~label ~src ~dst ~props);
    set_node_prop =
      (fun id ~key value ->
        Mvcc.Mvto.update mgr txn (V.Node, id) (fun ver ->
            ver.V.props <- (key, value) :: List.remove_assoc key ver.V.props));
    set_rel_prop =
      (fun id ~key value ->
        Mvcc.Mvto.update mgr txn (V.Rel, id) (fun ver ->
            ver.V.props <- (key, value) :: List.remove_assoc key ver.V.props));
    delete_node =
      (fun id ->
        (* DETACH semantics: incident visible relationships go first *)
        let rels = ref [] in
        G.iter_out g id (fun rid ->
            if Mvcc.Mvto.visible mgr txn (V.Rel, rid) then rels := rid :: !rels);
        G.iter_in g id (fun rid ->
            if Mvcc.Mvto.visible mgr txn (V.Rel, rid) then rels := rid :: !rels);
        List.iter (fun rid -> Mvcc.Mvto.delete mgr txn (V.Rel, rid)) !rels;
        Mvcc.Mvto.delete mgr txn (V.Node, id));
    delete_rel = (fun id -> Mvcc.Mvto.delete mgr txn (V.Rel, id));
    encode = (fun s -> G.code g s);
    decode = (fun c -> G.string_of_code g c);
    chunk_size = (fun () -> Storage.Table.chunk_capacity (G.node_table g));
    node_prop_fast = (fun id key -> Mvcc.Mvto.read_prop mgr txn (V.Node, id) key);
    rel_prop_fast = (fun id key -> Mvcc.Mvto.read_prop mgr txn (V.Rel, id) key);
    fetch_node =
      (fun ~chunk ~slot ->
        let cap = Storage.Table.chunk_capacity (G.node_table g) in
        let id = (chunk * cap) + slot in
        (* the bitmap word is charged once per scan entry; per-slot
           probing within it is cache-resident *)
        if
          Storage.Table.is_live_raw (G.node_table g) id
          && Mvcc.Mvto.visible mgr txn (V.Node, id)
        then id
        else -1);
    first_out =
      (fun id ->
        match L.unlink (G.node_field g id L.Node.first_out) with
        | Some r -> r
        | None -> -1);
    next_src =
      (fun rid ->
        match L.unlink (G.rel_field g rid L.Rel.next_src) with
        | Some r -> r
        | None -> -1);
    first_in =
      (fun id ->
        match L.unlink (G.node_field g id L.Node.first_in) with
        | Some r -> r
        | None -> -1);
    next_dst =
      (fun rid ->
        match L.unlink (G.rel_field g rid L.Rel.next_dst) with
        | Some r -> r
        | None -> -1);
    rel_visible = (fun rid -> Mvcc.Mvto.visible mgr txn (V.Rel, rid));
  }
