lib/query/source.mli: Gindex Mvcc Storage
