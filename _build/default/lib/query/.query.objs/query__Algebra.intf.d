lib/query/algebra.mli: Expr Format Storage
