lib/query/expr.ml: Array Float Printf Source Storage
