lib/query/interp.mli: Algebra Exec Source Storage
