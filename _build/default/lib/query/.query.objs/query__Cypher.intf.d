lib/query/cypher.mli: Algebra Exec Source Storage
