lib/query/algebra.ml: Expr Format List Printf Storage String
