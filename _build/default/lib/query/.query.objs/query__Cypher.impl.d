lib/query/cypher.ml: Algebra Buffer Expr Interp List Option Printf Source Storage String
