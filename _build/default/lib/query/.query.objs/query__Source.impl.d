lib/query/source.ml: Gindex List Mvcc Storage
