lib/query/interp.ml: Algebra Array Exec Expr Hashtbl Lazy List Mutex Source Storage
