lib/query/expr.mli: Source Storage
