(** Scalar expressions over tuples.

    A tuple is a [Value.t array]; node/relationship references are stored
    as [Value.Int id] in slots whose role the plan knows statically
    ([Prop] carries the slot kind).  Comparison semantics are SQL-style:
    Null operands and comparisons across incompatible types yield Null
    (falsy in filters) - the same rule the JIT folds at compile time. *)

module Value = Storage.Value

type kind = KNode | KRel
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Param of int  (** positional query parameter *)
  | Col of int  (** tuple slot *)
  | Prop of { col : int; kind : kind; key : int }
  | LabelOf of { col : int; kind : kind }
  | SrcOf of int
  | DstOf of int
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Add of t * t
  | Sub of t * t
  | IsNull of t

val col_id : Value.t array -> int -> int
(** Read a reference slot. @raise Invalid_argument otherwise. *)

val truthy : Value.t -> bool
val eval : Source.t -> params:Value.t array -> Value.t array -> t -> Value.t
val eval_bool : Source.t -> params:Value.t array -> Value.t array -> t -> bool
val fingerprint : t -> string
