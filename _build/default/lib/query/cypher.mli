(** A Cypher-like query language, compiled to the graph algebra.

    Surface (one path pattern; additional comma patterns bind single
    indexed nodes):

    {v
    MATCH (p:Person {id: $0})-[k:KNOWS]->(f:Person)
    WHERE f.age > 30 AND NOT f.name = 'Bob'
    RETURN f.name, f.age          -- or: RETURN count( * )
    ORDER BY f.age DESC  LIMIT 10

    CREATE (p:Person {name: 'Ada'})
    MATCH (a:Person {id: $0}), (b:Person {id: $1})
    CREATE (a)-[:KNOWS {since: 2020}]->(b)
    MATCH (p:Person {id: $0}) SET p.age = 37
    MATCH (p:Person {id: $0}) DETACH DELETE p
    v} *)

exception Parse_error of string

type query

val parse_string : string -> query
(** @raise Parse_error with a descriptive message. *)

val plan :
  ?indexed:(label:int -> key:int -> bool) -> Source.t -> query -> Algebra.plan
(** Compile to algebra against the source's dictionary.  [indexed]
    reports which (label code, key code) pairs have a secondary index, so
    lookups become IndexScan / AttachByIndex. *)

val compile :
  ?indexed:(label:int -> key:int -> bool) -> Source.t -> string -> Algebra.plan

val run :
  ?indexed:(label:int -> key:int -> bool) ->
  ?pool:Exec.Task_pool.t ->
  Source.t ->
  params:Storage.Value.t array ->
  string ->
  Storage.Value.t array list
(** Parse, plan and execute in one call (AOT interpreter). *)
