(* Scalar expressions over tuples.

   A tuple is a [Value.t array]; node and relationship references are
   stored as [Value.Int id] in slots whose role (node vs relationship) the
   plan knows statically, which is why [Prop] carries the slot kind.
   Strings are dictionary codes ([Value.Str]); equality on them compares
   codes - the dictionary speed-up of DD3. *)

module Value = Storage.Value

type kind = KNode | KRel

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Param of int (* query parameter slot *)
  | Col of int (* tuple slot *)
  | Prop of { col : int; kind : kind; key : int } (* property of a node/rel slot *)
  | LabelOf of { col : int; kind : kind }
  | SrcOf of int (* source node id of a relationship slot *)
  | DstOf of int
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Add of t * t
  | Sub of t * t
  | IsNull of t

let col_id tuple i =
  match tuple.(i) with
  | Value.Int id -> id
  | v -> invalid_arg ("Expr: slot is not a reference: " ^ Value.to_string v)

let truthy = function
  | Value.Bool b -> b
  | Value.Null -> false
  | Value.Int i -> i <> 0
  | _ -> true

let cmp_op = function
  | Eq -> fun c -> c = 0
  | Ne -> fun c -> c <> 0
  | Lt -> fun c -> c < 0
  | Le -> fun c -> c <= 0
  | Gt -> fun c -> c > 0
  | Ge -> fun c -> c >= 0

(* Interpreted evaluation: a per-tuple tree walk with boxed values - the
   deliberately dynamic AOT path that the JIT engine specialises away. *)
let rec eval (g : Source.t) ~params tuple = function
  | Const v -> v
  | Param i -> params.(i)
  | Col i -> tuple.(i)
  | Prop { col; kind; key } -> (
      let id = col_id tuple col in
      let r =
        match kind with
        | KNode -> g.Source.node_prop id key
        | KRel -> g.Source.rel_prop id key
      in
      match r with Some v -> v | None -> Value.Null)
  | LabelOf { col; kind } ->
      let id = col_id tuple col in
      Value.Str
        (match kind with
        | KNode -> g.Source.node_label id
        | KRel -> g.Source.rel_label id)
  | SrcOf col -> Value.Int (g.Source.rel_src (col_id tuple col))
  | DstOf col -> Value.Int (g.Source.rel_dst (col_id tuple col))
  | Cmp (op, a, b) -> (
      let va = eval g ~params tuple a and vb = eval g ~params tuple b in
      (* SQL-style: comparisons across incompatible types (and against
         Null) are Null - the same rule the JIT folds at compile time
         from its type hints *)
      match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Int _, Value.Int _
      | Value.Str _, Value.Str _
      | Value.Bool _, Value.Bool _
      | Value.Float _, Value.Float _ ->
          Value.Bool (cmp_op op (Value.compare va vb))
      | Value.Int x, Value.Float y ->
          Value.Bool (cmp_op op (Float.compare (float_of_int x) y))
      | Value.Float x, Value.Int y ->
          Value.Bool (cmp_op op (Float.compare x (float_of_int y)))
      | _ -> Value.Null)
  | And (a, b) ->
      Value.Bool (truthy (eval g ~params tuple a) && truthy (eval g ~params tuple b))
  | Or (a, b) ->
      Value.Bool (truthy (eval g ~params tuple a) || truthy (eval g ~params tuple b))
  | Not a -> Value.Bool (not (truthy (eval g ~params tuple a)))
  | Add (a, b) -> arith ( + ) ( +. ) (eval g ~params tuple a) (eval g ~params tuple b)
  | Sub (a, b) -> arith ( - ) ( -. ) (eval g ~params tuple a) (eval g ~params tuple b)
  | IsNull a -> Value.Bool (eval g ~params tuple a = Value.Null)

and arith iop fop a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> Value.Int (iop x y)
  | Value.Float x, Value.Float y -> Value.Float (fop x y)
  | Value.Int x, Value.Float y -> Value.Float (fop (float_of_int x) y)
  | Value.Float x, Value.Int y -> Value.Float (fop x (float_of_int y))
  | _ -> Value.Null

let eval_bool g ~params tuple e = truthy (eval g ~params tuple e)

(* structural fingerprint, part of the JIT cache key *)
let rec fingerprint = function
  | Const v -> "c" ^ Value.to_string v
  | Param i -> Printf.sprintf "p%d" i
  | Col i -> Printf.sprintf "t%d" i
  | Prop { col; kind; key } ->
      Printf.sprintf "prop(%d,%s,%d)" col
        (match kind with KNode -> "n" | KRel -> "r")
        key
  | LabelOf { col; kind } ->
      Printf.sprintf "label(%d,%s)" col (match kind with KNode -> "n" | KRel -> "r")
  | SrcOf c -> Printf.sprintf "src(%d)" c
  | DstOf c -> Printf.sprintf "dst(%d)" c
  | Cmp (op, a, b) ->
      Printf.sprintf "cmp%d(%s,%s)"
        (match op with Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5)
        (fingerprint a) (fingerprint b)
  | And (a, b) -> Printf.sprintf "and(%s,%s)" (fingerprint a) (fingerprint b)
  | Or (a, b) -> Printf.sprintf "or(%s,%s)" (fingerprint a) (fingerprint b)
  | Not a -> Printf.sprintf "not(%s)" (fingerprint a)
  | Add (a, b) -> Printf.sprintf "add(%s,%s)" (fingerprint a) (fingerprint b)
  | Sub (a, b) -> Printf.sprintf "sub(%s,%s)" (fingerprint a) (fingerprint b)
  | IsNull a -> Printf.sprintf "isnull(%s)" (fingerprint a)
