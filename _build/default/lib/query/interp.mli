(** Push-based query interpretation - the AOT execution mode
    (Section 6.1).  Operators are AOT-compiled stream transformers;
    parallel execution splits the leaf scan into chunk morsels and runs
    operators above the first pipeline breaker serially over the merged
    output. *)

module Value = Storage.Value

type row = Value.t array
type stream = (row -> unit) -> unit

exception Limit_stop

val is_leaf : Algebra.plan -> bool
val chunkable : Algebra.plan -> bool
val leftmost_leaf : Algebra.plan -> Algebra.plan

val produce :
  Source.t -> params:Value.t array -> ?chunk:int -> Algebra.plan -> stream
(** Serial stream of a plan's rows; with [chunk], the leaf scan is
    restricted to that morsel. *)

(** Result of {!split_plan}: either fully chunk-parallelisable, or a
    parallel core plus the serial transformer for everything above the
    first breaker. *)
type split = Par of Algebra.plan | Ser of Algebra.plan * (stream -> stream)

val split_plan : Source.t -> params:Value.t array -> Algebra.plan -> split

val run :
  ?pool:Exec.Task_pool.t ->
  Source.t ->
  params:Value.t array ->
  Algebra.plan ->
  row list

val count : ?pool:Exec.Task_pool.t -> Source.t -> params:Value.t array -> Algebra.plan -> int
