(* The LDBC Social Network Benchmark schema (Section 7.2), dictionary-
   encoded against a concrete store.

   Entities: persons interconnected by KNOWS; messages (posts and
   comments) created by persons, posted in forums, liking and replying;
   tags, places and organisations persons are connected to. *)

module G = Storage.Graph_store
module Value = Storage.Value

type t = {
  (* node labels *)
  person : int;
  post : int;
  comment : int;
  forum : int;
  tag : int;
  place : int;
  organisation : int;
  (* relationship labels *)
  knows : int;
  has_creator : int; (* message -> person *)
  likes : int; (* person -> message *)
  reply_of : int; (* comment -> message *)
  container_of : int; (* forum -> post *)
  has_moderator : int; (* forum -> person *)
  has_member : int; (* forum -> person *)
  has_tag : int; (* message -> tag *)
  has_interest : int; (* person -> tag *)
  is_located_in : int; (* person/message -> place *)
  study_at : int; (* person -> organisation *)
  work_at : int;
  (* property keys *)
  k_id : int; (* the LDBC identifier - what the workload looks up *)
  k_first_name : int;
  k_last_name : int;
  k_gender : int;
  k_birthday : int;
  k_creation_date : int;
  k_location_ip : int;
  k_browser : int;
  k_content : int;
  k_length : int;
  k_title : int;
  k_name : int;
  k_class_year : int;
  k_work_from : int;
  k_type : int;
}

let attach g =
  {
    person = G.code g "Person";
    post = G.code g "Post";
    comment = G.code g "Comment";
    forum = G.code g "Forum";
    tag = G.code g "Tag";
    place = G.code g "Place";
    organisation = G.code g "Organisation";
    knows = G.code g "KNOWS";
    has_creator = G.code g "HAS_CREATOR";
    likes = G.code g "LIKES";
    reply_of = G.code g "REPLY_OF";
    container_of = G.code g "CONTAINER_OF";
    has_moderator = G.code g "HAS_MODERATOR";
    has_member = G.code g "HAS_MEMBER";
    has_tag = G.code g "HAS_TAG";
    has_interest = G.code g "HAS_INTEREST";
    is_located_in = G.code g "IS_LOCATED_IN";
    study_at = G.code g "STUDY_AT";
    work_at = G.code g "WORK_AT";
    k_id = G.code g "id";
    k_first_name = G.code g "firstName";
    k_last_name = G.code g "lastName";
    k_gender = G.code g "gender";
    k_birthday = G.code g "birthday";
    k_creation_date = G.code g "creationDate";
    k_location_ip = G.code g "locationIP";
    k_browser = G.code g "browserUsed";
    k_content = G.code g "content";
    k_length = G.code g "length";
    k_title = G.code g "title";
    k_name = G.code g "name";
    k_class_year = G.code g "classYear";
    k_work_from = G.code g "workFrom";
    k_type = G.code g "type";
  }

(* Property type hints for the JIT (compile-time type information,
   Section 6.2 requirement (3)). *)
let prop_tag t key : Jit.Ir.vtag =
  if
    key = t.k_first_name || key = t.k_last_name || key = t.k_gender
    || key = t.k_location_ip || key = t.k_browser || key = t.k_content
    || key = t.k_title || key = t.k_name || key = t.k_type
  then Jit.Ir.TagStr
  else Jit.Ir.TagInt

(* message-subclass selector used by the post/cmt query variants *)
type msg = [ `Post | `Cmt ]

let msg_label t = function `Post -> t.post | `Cmt -> t.comment
let msg_name = function `Post -> "post" | `Cmt -> "cmt"
