(* A deterministic, scaled-down LDBC-SNB-like data generator (Section 7.2).

   The official datagen needs a Spark cluster; this generator reproduces
   the statistics the interactive short-read and update workloads are
   sensitive to:

   - a KNOWS graph with power-law-ish degrees (preferential attachment),
   - per-person activity: posts in forums, comment reply trees with
     geometric depth (so post/cmt query variants traverse different
     distances to the thread root),
   - likes, tags, places and organisations with skewed popularity.

   The scale factor multiplies the person count (sf = 1.0 ~ 1000 persons,
   a laptop-scale stand-in for the paper's SF10).  Generation is a bulk
   load through the raw graph store: records are born committed
   (bts = 0), which matches a datagen import that precedes all
   transactions. *)

module G = Storage.Graph_store
module Value = Storage.Value

type params = {
  sf : float;
  seed : int;
  friends_per_person : int; (* mean out-degree of KNOWS *)
  posts_per_person : int;
  comments_per_post : int; (* mean size of a reply tree *)
  likes_per_message : int;
}

let default_params =
  {
    sf = 0.1;
    seed = 42;
    friends_per_person = 8;
    posts_per_person = 3;
    comments_per_post = 3;
    likes_per_message = 2;
  }

type dataset = {
  store : G.t;
  schema : Schema.t;
  persons : int array; (* physical node ids *)
  posts : int array;
  comments : int array;
  forums : int array;
  tags : int array;
  places : int array;
  organisations : int array;
  person_ids : int array; (* LDBC ids, aligned with [persons] *)
  post_ids : int array;
  comment_ids : int array;
}

(* splitmix64-style deterministic PRNG *)
module Rng = struct
  type t = { mutable s : int }

  let make seed = { s = (seed * 0x9E3779B9) lor 1 }

  let next t =
    t.s <- (t.s + 0x2545F4914F6CDD1D) land max_int;
    let z = t.s in
    let z = (z lxor (z lsr 30)) * 0x5851F42D4C957F2D land max_int in
    let z = (z lxor (z lsr 27)) * 0x14057B7EF767814F land max_int in
    z lxor (z lsr 31)

  let int t bound = if bound <= 0 then 0 else next t mod bound

  (* geometric with mean ~m *)
  let geometric t m =
    let rec go acc = if int t (m + 1) = 0 then acc else go (acc + 1) in
    go 0

  (* power-law-ish pick favouring low indices *)
  let zipf_pick t n =
    if n <= 1 then 0
    else
      let u = float_of_int (int t 1_000_000) /. 1_000_000. in
      let x = (1. -. u) ** 2.5 in
      min (n - 1) (int_of_float (x *. float_of_int n))
end

let first_names = [| "Jan"; "Yang"; "Maria"; "Ali"; "Otto"; "Ivan"; "Akira"; "Lena" |]
let last_names = [| "Smith"; "Mueller"; "Zhang"; "Khan"; "Silva"; "Ito"; "Novak" |]
let browsers = [| "Firefox"; "Chrome"; "Safari"; "Opera" |]
let genders = [| "male"; "female" |]
let cities = [| "Ilmenau"; "Berlin"; "Beijing"; "Lagos"; "Lima"; "Mumbai"; "Oslo" |]
let org_names = [| "TU_Ilmenau"; "Acme"; "Globex"; "Initech"; "Umbrella" |]
let tag_names =
  [| "databases"; "pmem"; "jit"; "graphs"; "ocaml"; "llvm"; "mvcc"; "btree" |]

let day = 86_400_000 (* ms *)
let epoch_2010 = 1_262_304_000_000

(* LDBC id spaces (disjoint per entity type, as in the datagen) *)
let person_base = 1_000_000
let post_base = 10_000_000
let comment_base = 20_000_000
let forum_base = 30_000_000

let generate ?(params = default_params) store =
  let sc = Schema.attach store in
  let rng = Rng.make params.seed in
  let n_persons = max 4 (int_of_float (params.sf *. 1000.)) in
  let str s = G.encode_value store (Value.Text s) in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  (* static pools *)
  let tags =
    Array.mapi
      (fun i name ->
        G.create_node store ~label:"Tag"
          ~props:[ ("id", Value.Int i); ("name", Value.Text name) ])
      tag_names
  in
  let places =
    Array.mapi
      (fun i name ->
        G.create_node store ~label:"Place"
          ~props:
            [ ("id", Value.Int i); ("name", Value.Text name);
              ("type", Value.Text "city") ])
      cities
  in
  let organisations =
    Array.mapi
      (fun i name ->
        G.create_node store ~label:"Organisation"
          ~props:[ ("id", Value.Int i); ("name", Value.Text name) ])
      org_names
  in
  (* persons *)
  let person_ids = Array.init n_persons (fun i -> person_base + i) in
  let persons =
    Array.init n_persons (fun i ->
        let creation = epoch_2010 + (Rng.int rng 3650 * day) in
        G.create_node store ~label:"Person"
          ~props:
            [
              ("id", Value.Int person_ids.(i));
              ("firstName", Value.Text (pick first_names));
              ("lastName", Value.Text (pick last_names));
              ("gender", Value.Text (pick genders));
              ("birthday", Value.Int (epoch_2010 - (Rng.int rng 18250 * day)));
              ("creationDate", Value.Int creation);
              ("locationIP",
               Value.Text
                 (Printf.sprintf "%d.%d.%d.%d" (Rng.int rng 255) (Rng.int rng 255)
                    (Rng.int rng 255) (Rng.int rng 255)));
              ("browserUsed", Value.Text (pick browsers));
            ])
  in
  Array.iter
    (fun p ->
      ignore
        (G.create_rel store ~label:"IS_LOCATED_IN" ~src:p
           ~dst:places.(Rng.int rng (Array.length places)) ~props:[]);
      for _ = 0 to Rng.int rng 3 do
        ignore
          (G.create_rel store ~label:"HAS_INTEREST" ~src:p
             ~dst:tags.(Rng.zipf_pick rng (Array.length tags)) ~props:[])
      done;
      if Rng.int rng 2 = 0 then
        ignore
          (G.create_rel store ~label:"STUDY_AT" ~src:p
             ~dst:organisations.(Rng.int rng (Array.length organisations))
             ~props:[ ("classYear", Value.Int (2000 + Rng.int rng 20)) ]);
      if Rng.int rng 2 = 0 then
        ignore
          (G.create_rel store ~label:"WORK_AT" ~src:p
             ~dst:organisations.(Rng.int rng (Array.length organisations))
             ~props:[ ("workFrom", Value.Int (2000 + Rng.int rng 20)) ]))
    persons;
  (* KNOWS: ring for connectivity + preferential attachment extras *)
  let knows_edge a b =
    ignore
      (G.create_rel store ~label:"KNOWS" ~src:persons.(a) ~dst:persons.(b)
         ~props:[ ("creationDate", Value.Int (epoch_2010 + (Rng.int rng 3650 * day))) ])
  in
  for i = 0 to n_persons - 1 do
    knows_edge i ((i + 1) mod n_persons);
    let extras = max 0 (Rng.geometric rng (params.friends_per_person - 2)) in
    for _ = 1 to extras do
      let target = Rng.zipf_pick rng n_persons in
      if target <> i then knows_edge i target
    done
  done;
  (* forums, one per ~5 persons, moderated by a popular person *)
  let n_forums = max 1 (n_persons / 5) in
  let forums =
    Array.init n_forums (fun i ->
        let f =
          G.create_node store ~label:"Forum"
            ~props:
              [
                ("id", Value.Int (forum_base + i));
                ("title", Value.Text (Printf.sprintf "Forum-%d" i));
                ("creationDate", Value.Int (epoch_2010 + (Rng.int rng 3650 * day)));
              ]
        in
        ignore
          (G.create_rel store ~label:"HAS_MODERATOR" ~src:f
             ~dst:persons.(Rng.zipf_pick rng n_persons) ~props:[]);
        for _ = 1 to 4 do
          ignore
            (G.create_rel store ~label:"HAS_MEMBER" ~src:f
               ~dst:persons.(Rng.int rng n_persons) ~props:[])
        done;
        f)
  in
  (* messages: posts with reply trees of comments *)
  let posts = ref [] and comments = ref [] in
  let post_ids = ref [] and comment_ids = ref [] in
  let n_posts = ref 0 and n_comments = ref 0 in
  let message_props ~id ~creation =
    [
      ("id", Value.Int id);
      ("creationDate", Value.Int creation);
      ("content", Value.Text (Printf.sprintf "msg-%d" id));
      ("length", Value.Int (10 + Rng.int rng 500));
      ("browserUsed", Value.Text (pick browsers));
    ]
  in
  Array.iteri
    (fun pi p ->
      for _ = 1 to params.posts_per_person do
        let id = post_base + !n_posts in
        incr n_posts;
        let creation = epoch_2010 + (Rng.int rng 3650 * day) in
        let post = G.create_node store ~label:"Post" ~props:(message_props ~id ~creation) in
        posts := post :: !posts;
        post_ids := id :: !post_ids;
        ignore (G.create_rel store ~label:"HAS_CREATOR" ~src:post ~dst:p ~props:[]);
        ignore
          (G.create_rel store ~label:"CONTAINER_OF"
             ~src:forums.(Rng.int rng n_forums) ~dst:post ~props:[]);
        ignore
          (G.create_rel store ~label:"HAS_TAG" ~src:post
             ~dst:tags.(Rng.zipf_pick rng (Array.length tags)) ~props:[]);
        (* reply tree: each comment replies to the post or an earlier
           comment of the same thread, giving variable root distance *)
        let thread = ref [ post ] in
        let n_replies = Rng.geometric rng params.comments_per_post in
        for _ = 1 to n_replies do
          let cid = comment_base + !n_comments in
          incr n_comments;
          let parent = List.nth !thread (Rng.int rng (List.length !thread)) in
          let c =
            G.create_node store ~label:"Comment"
              ~props:(message_props ~id:cid ~creation:(creation + (Rng.int rng 30 * day)))
          in
          comments := c :: !comments;
          comment_ids := cid :: !comment_ids;
          ignore (G.create_rel store ~label:"REPLY_OF" ~src:c ~dst:parent ~props:[]);
          ignore
            (G.create_rel store ~label:"HAS_CREATOR" ~src:c
               ~dst:persons.(Rng.zipf_pick rng n_persons) ~props:[]);
          thread := c :: !thread
        done;
        (* likes *)
        for _ = 1 to Rng.int rng (2 * params.likes_per_message) do
          ignore
            (G.create_rel store ~label:"LIKES"
               ~src:persons.(Rng.int rng n_persons) ~dst:post
               ~props:[ ("creationDate", Value.Int (creation + (Rng.int rng 60 * day))) ])
        done
      done;
      ignore pi)
    persons;
  ignore str;
  {
    store;
    schema = sc;
    persons;
    posts = Array.of_list (List.rev !posts);
    comments = Array.of_list (List.rev !comments);
    forums;
    tags;
    places;
    organisations;
    person_ids;
    post_ids = Array.of_list (List.rev !post_ids);
    comment_ids = Array.of_list (List.rev !comment_ids);
  }

(* Secondary indexes for the indexed execution variants (-i): one per
   (label, id) pair, as maintained throughout the paper's experiments. *)
type indexes = {
  by_person_id : Gindex.Index.t;
  by_post_id : Gindex.Index.t;
  by_comment_id : Gindex.Index.t;
  by_forum_id : Gindex.Index.t;
  by_place_id : Gindex.Index.t;
  by_tag_id : Gindex.Index.t;
}

let build_indexes ?(placement = Gindex.Node_store.Hybrid) ds =
  let pool = G.pool ds.store in
  let sc = ds.schema in
  let mk label = Gindex.Index.create pool ~placement ~label ~key:sc.Schema.k_id in
  let idx =
    {
      by_person_id = mk sc.Schema.person;
      by_post_id = mk sc.Schema.post;
      by_comment_id = mk sc.Schema.comment;
      by_forum_id = mk sc.Schema.forum;
      by_place_id = mk sc.Schema.place;
      by_tag_id = mk sc.Schema.tag;
    }
  in
  Array.iteri
    (fun i p -> Gindex.Index.insert idx.by_person_id (Value.Int ds.person_ids.(i)) p)
    ds.persons;
  Array.iteri
    (fun i p -> Gindex.Index.insert idx.by_post_id (Value.Int ds.post_ids.(i)) p)
    ds.posts;
  Array.iteri
    (fun i c -> Gindex.Index.insert idx.by_comment_id (Value.Int ds.comment_ids.(i)) c)
    ds.comments;
  Array.iteri
    (fun i f -> Gindex.Index.insert idx.by_forum_id (Value.Int (forum_base + i)) f)
    ds.forums;
  Array.iteri (fun i p -> Gindex.Index.insert idx.by_place_id (Value.Int i) p) ds.places;
  Array.iteri (fun i t -> Gindex.Index.insert idx.by_tag_id (Value.Int i) t) ds.tags;
  idx

let index_lookup_fn ds idx ~label ~key =
  let sc = ds.schema in
  if key <> sc.Schema.k_id then None
  else if label = sc.Schema.person then Some idx.by_person_id
  else if label = sc.Schema.post then Some idx.by_post_id
  else if label = sc.Schema.comment then Some idx.by_comment_id
  else if label = sc.Schema.forum then Some idx.by_forum_id
  else if label = sc.Schema.place then Some idx.by_place_id
  else if label = sc.Schema.tag then Some idx.by_tag_id
  else None

(* Index maintenance for update transactions: the core engine calls this
   after a commit with the transaction's write-set. *)
let index_new_node ds idx ~label ~node =
  match G.node_prop ds.store node ds.schema.Schema.k_id with
  | Some (Value.Int id) -> (
      let v = Value.Int id in
      if label = ds.schema.Schema.person then
        Gindex.Index.insert idx.by_person_id v node
      else if label = ds.schema.Schema.post then
        Gindex.Index.insert idx.by_post_id v node
      else if label = ds.schema.Schema.comment then
        Gindex.Index.insert idx.by_comment_id v node
      else if label = ds.schema.Schema.forum then
        Gindex.Index.insert idx.by_forum_id v node)
  | _ -> ()
