(** Deterministic, scaled-down LDBC-SNB-like data generator (Section 7.2).

    Reproduces the statistics the interactive workloads are sensitive to:
    a power-law KNOWS graph, forum-contained posts with geometric-depth
    comment reply trees, skewed likes/tags/places.  Generation is a bulk
    load through the raw store (records are born committed). *)

type params = {
  sf : float;  (** scale factor; 1.0 ~ 1000 persons *)
  seed : int;
  friends_per_person : int;
  posts_per_person : int;
  comments_per_post : int;
  likes_per_message : int;
}

val default_params : params

type dataset = {
  store : Storage.Graph_store.t;
  schema : Schema.t;
  persons : int array;  (** physical node ids *)
  posts : int array;
  comments : int array;
  forums : int array;
  tags : int array;
  places : int array;
  organisations : int array;
  person_ids : int array;  (** LDBC ids, aligned with [persons] *)
  post_ids : int array;
  comment_ids : int array;
}

val person_base : int
val post_base : int
val comment_base : int
val forum_base : int
val generate : ?params:params -> Storage.Graph_store.t -> dataset

(** One id index per entity type, as maintained throughout the paper's
    indexed experiments. *)
type indexes = {
  by_person_id : Gindex.Index.t;
  by_post_id : Gindex.Index.t;
  by_comment_id : Gindex.Index.t;
  by_forum_id : Gindex.Index.t;
  by_place_id : Gindex.Index.t;
  by_tag_id : Gindex.Index.t;
}

val build_indexes : ?placement:Gindex.Node_store.placement -> dataset -> indexes
val index_lookup_fn :
  dataset -> indexes -> label:int -> key:int -> Gindex.Index.t option

val index_new_node : dataset -> indexes -> label:int -> node:int -> unit
(** Post-commit index maintenance for update transactions. *)
