(* Complex-read extension workload (IC-style).

   The paper evaluates only the Interactive Short Read and Update sets and
   notes (Sections 7.5, 8) that JIT compilation should pay off far more
   for "analytical and long-running queries" that traverse a significant
   portion of the graph.  These three queries - modelled on the LDBC
   Interactive Complex Reads - provide exactly that workload:

   CR1 (IC1-like): persons up to two KNOWS hops from the start person
        whose first name matches the parameter, most recently created
        first, limit 20.
   CR2 (IC2-like): the 20 most recent messages created by the start
        person's friends.
   CR3 (IC6-like): tag popularity among the posts created by the start
        person's friends (group-by-count, descending).

   Parameters: 0 = person LDBC id, 1 = first-name dictionary code (CR1). *)

module A = Query.Algebra
module E = Query.Expr
module Value = Storage.Value
open Schema

let entity ~access ~label sc =
  match access with
  | `Index -> A.IndexScan { label; key = sc.k_id; value = E.Param 0 }
  | `Scan ->
      A.Filter
        {
          pred =
            E.Cmp (E.Eq, E.Prop { col = 0; kind = E.KNode; key = sc.k_id }, E.Param 0);
          child = A.NodeScan { label = Some label };
        }

let nprop col key = E.Prop { col; kind = E.KNode; key }

(* start(0) -[KNOWS]-(1)-> friend(2) -[KNOWS]-(3)-> fof(4) *)
let two_hops sc ~access =
  A.EndPoint
    {
      col = 3;
      which = `Dst;
      child =
        A.Expand
          {
            col = 2;
            dir = A.Out;
            label = Some sc.knows;
            child =
              A.EndPoint
                {
                  col = 1;
                  which = `Dst;
                  child =
                    A.Expand
                      {
                        col = 0;
                        dir = A.Out;
                        label = Some sc.knows;
                        child = entity ~access ~label:sc.person sc;
                      };
                };
          };
    }

let cr1 sc ~access =
  A.Limit
    {
      n = 20;
      child =
        A.Sort
          {
            keys = [ (E.Col 1, `Desc) ];
            child =
              A.Distinct
                {
                  child =
                    A.Project
                      {
                        exprs =
                          [
                            nprop 4 sc.k_id;
                            nprop 4 sc.k_creation_date;
                            nprop 4 sc.k_last_name;
                          ];
                        child =
                          A.Filter
                            {
                              pred =
                                E.Cmp
                                  ( E.Eq,
                                    nprop 4 sc.k_first_name,
                                    E.Param 1 );
                              child = two_hops sc ~access;
                            };
                      };
                };
          };
    }

let cr2 sc ~access =
  A.Limit
    {
      n = 20;
      child =
        A.Sort
          {
            keys = [ (E.Col 3, `Desc) ];
            child =
              A.Project
                {
                  exprs =
                    [
                      nprop 2 sc.k_id (* friend *);
                      nprop 4 sc.k_id (* message *);
                      nprop 4 sc.k_content;
                      nprop 4 sc.k_creation_date;
                    ];
                  child =
                    A.EndPoint
                      {
                        col = 3;
                        which = `Src;
                        child =
                          A.Expand
                            {
                              col = 2;
                              dir = A.In;
                              label = Some sc.has_creator;
                              child =
                                A.EndPoint
                                  {
                                    col = 1;
                                    which = `Dst;
                                    child =
                                      A.Expand
                                        {
                                          col = 0;
                                          dir = A.Out;
                                          label = Some sc.knows;
                                          child = entity ~access ~label:sc.person sc;
                                        };
                                  };
                            };
                      };
                };
          };
    }

let cr3 sc ~access =
  A.Sort
    {
      keys = [ (E.Col 1, `Desc) ];
      child =
        A.GroupCount
          {
            child =
              A.Project
                {
                  exprs = [ nprop 6 sc.k_name ];
                  child =
                    A.EndPoint
                      {
                        col = 5;
                        which = `Dst;
                        child =
                          A.Expand
                            {
                              col = 4;
                              dir = A.Out;
                              label = Some sc.has_tag;
                              child =
                                A.Filter
                                  {
                                    pred =
                                      E.Cmp
                                        ( E.Eq,
                                          E.LabelOf { col = 4; kind = E.KNode },
                                          E.Const (Value.Str sc.post) );
                                    child =
                                      A.EndPoint
                                        {
                                          col = 3;
                                          which = `Src;
                                          child =
                                            A.Expand
                                              {
                                                col = 2;
                                                dir = A.In;
                                                label = Some sc.has_creator;
                                                child =
                                                  A.EndPoint
                                                    {
                                                      col = 1;
                                                      which = `Dst;
                                                      child =
                                                        A.Expand
                                                          {
                                                            col = 0;
                                                            dir = A.Out;
                                                            label = Some sc.knows;
                                                            child =
                                                              entity ~access
                                                                ~label:sc.person sc;
                                                          };
                                                    };
                                              };
                                        };
                                  };
                            };
                      };
                };
          };
    }

type spec = {
  name : string;
  plan : access:[ `Index | `Scan ] -> A.plan;
  nparams : int;
}

let all sc =
  [
    { name = "CR1"; plan = (fun ~access -> cr1 sc ~access); nparams = 2 };
    { name = "CR2"; plan = (fun ~access -> cr2 sc ~access); nparams = 1 };
    { name = "CR3"; plan = (fun ~access -> cr3 sc ~access); nparams = 1 };
  ]

let draw_params (ds : Gen.dataset) rng spec =
  let person = Value.Int ds.Gen.person_ids.(Random.State.int rng (Array.length ds.Gen.person_ids)) in
  if spec.nparams = 1 then [| person |]
  else
    (* a first-name code that actually occurs *)
    let g = ds.Gen.store in
    let p = ds.Gen.persons.(Random.State.int rng (Array.length ds.Gen.persons)) in
    let name =
      match Storage.Graph_store.node_prop g p ds.Gen.schema.Schema.k_first_name with
      | Some v -> v
      | None -> Value.Str 0
    in
    [| person; name |]
