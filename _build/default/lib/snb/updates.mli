(** LDBC-SNB Interactive Update queries IU1..IU8 as single-pipeline
    algebra plans (Section 7.2), JIT-compilable end to end: existing
    endpoints are fetched with mid-pipeline index lookups. *)

module A = Query.Algebra

val iu1 : Schema.t -> A.plan
(** IU1: add person (+location, +interest). *)

val iu2 : Schema.t -> A.plan
(** IU2: add like to post. *)

val iu3 : Schema.t -> A.plan
(** IU3: add like to comment. *)

val iu4 : Schema.t -> A.plan
(** IU4: add forum (+moderator). *)

val iu5 : Schema.t -> A.plan
(** IU5: add forum membership. *)

val iu6 : Schema.t -> A.plan
(** IU6: add post (+creator, +container). *)

val iu7 : Schema.t -> A.plan
(** IU7: add comment replying to a post. *)

val iu8 : Schema.t -> A.plan
(** IU8: add friendship. *)

(** Monotonic source of fresh LDBC ids for the update stream. *)
type ctx

val make_ctx : unit -> ctx
val fresh : ctx -> int

type spec = {
  name : string;
  plan : Schema.t -> A.plan;
  draw : Gen.dataset -> Random.State.t -> ctx -> Storage.Value.t array;
  creates : (Schema.t -> int) option;
      (** label of the created node, for index maintenance *)
}

val all : spec list
