(** The LDBC-SNB schema (Section 7.2), dictionary-encoded against a
    concrete store: label and property-key codes for persons, messages
    (posts/comments), forums, tags, places and organisations. *)

type t = {
  person : int;
  post : int;
  comment : int;
  forum : int;
  tag : int;
  place : int;
  organisation : int;
  knows : int;
  has_creator : int;
  likes : int;
  reply_of : int;
  container_of : int;
  has_moderator : int;
  has_member : int;
  has_tag : int;
  has_interest : int;
  is_located_in : int;
  study_at : int;
  work_at : int;
  k_id : int;
  k_first_name : int;
  k_last_name : int;
  k_gender : int;
  k_birthday : int;
  k_creation_date : int;
  k_location_ip : int;
  k_browser : int;
  k_content : int;
  k_length : int;
  k_title : int;
  k_name : int;
  k_class_year : int;
  k_work_from : int;
  k_type : int;
}

val attach : Storage.Graph_store.t -> t
val prop_tag : t -> int -> Jit.Ir.vtag
(** Compile-time property types for the JIT (requirement (3)). *)

type msg = [ `Cmt | `Post ]

val msg_label : t -> msg -> int
val msg_name : msg -> string
