(** LDBC-SNB Interactive Short Read queries IS1..IS7 as algebra plans
    (Section 7.2), with scan/index access variants and post/cmt message
    variants.  Parameter convention: [params.(0)] is the LDBC id of the
    start entity. *)

module A = Query.Algebra

type access = [ `Index | `Scan ]

val is1 : Schema.t -> access:access -> A.plan
val is2 : Schema.t -> access:access -> msg:Schema.msg -> A.plan
val is3 : Schema.t -> access:access -> A.plan list
(** KNOWS is undirected: the result is the union of the two plans. *)

val is4 : Schema.t -> access:access -> msg:Schema.msg -> A.plan
val is5 : Schema.t -> access:access -> msg:Schema.msg -> A.plan
val is6 : Schema.t -> access:access -> msg:Schema.msg -> A.plan
val is7 : Schema.t -> access:access -> msg:Schema.msg -> A.plan

type spec = {
  name : string;  (** figure label: "1", "2-post", ... *)
  plans : access:access -> A.plan list;
  param : [ `Msg of Schema.msg | `Person ];
}

val all : Schema.t -> spec list
(** The 12 query configurations in figure order. *)

val draw_param : Gen.dataset -> Random.State.t -> spec -> Storage.Value.t
