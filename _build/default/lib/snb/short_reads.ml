(* The LDBC-SNB Interactive Short Read queries IS1..IS7 (Section 7.2) as
   graph-algebra plans.

   Access-path variants, matching the paper's figures:
   - [`Scan]: no index - the table of record chunks is scanned and
     filtered on the LDBC id property (the -s / -p configurations);
   - [`Index]: a B+-tree lookup on (label, id) (the -i configurations).

   Message-centric queries (2, 4, 5, 6, 7) come in post/cmt variants: the
   parameter is a Post or a Comment; comments additionally traverse the
   REPLY_OF chain to the thread root, which is why the paper reports them
   separately.

   Parameter convention: params.(0) holds the LDBC id of the start
   entity. *)

module A = Query.Algebra
module E = Query.Expr
module Value = Storage.Value
open Schema

type access = [ `Scan | `Index ]

(* access path for "the <label> node whose id property equals param 0" *)
let entity ~access ~label sc =
  match access with
  | `Index -> A.IndexScan { label; key = sc.k_id; value = E.Param 0 }
  | `Scan ->
      A.Filter
        {
          pred =
            E.Cmp (E.Eq, E.Prop { col = 0; kind = E.KNode; key = sc.k_id }, E.Param 0);
          child = A.NodeScan { label = Some label };
        }

let nprop col key = E.Prop { col; kind = E.KNode; key }

(* IS1: profile of a person - name fields plus the city they live in. *)
let is1 sc ~access =
  A.Project
    {
      exprs =
        [
          nprop 0 sc.k_first_name;
          nprop 0 sc.k_last_name;
          nprop 0 sc.k_birthday;
          nprop 0 sc.k_location_ip;
          nprop 0 sc.k_browser;
          nprop 2 sc.k_id (* city id *);
          nprop 0 sc.k_gender;
          nprop 0 sc.k_creation_date;
        ];
      child =
        A.EndPoint
          {
            col = 1;
            which = `Dst;
            child =
              A.Expand
                {
                  col = 0;
                  dir = A.Out;
                  label = Some sc.is_located_in;
                  child = entity ~access ~label:sc.person sc;
                };
          };
    }

(* IS2: a person's 10 most recent messages of the given subclass, each
   with its thread root and the root's author. *)
let is2 sc ~access ~(msg : msg) =
  let message = msg_label sc msg in
  A.Project
    {
      exprs =
        [
          nprop 2 sc.k_id (* message id *);
          nprop 2 sc.k_content;
          nprop 2 sc.k_creation_date;
          nprop 3 sc.k_id (* root post id *);
          nprop 5 sc.k_id (* root author id *);
          nprop 5 sc.k_first_name;
          nprop 5 sc.k_last_name;
        ];
      child =
        A.EndPoint
          {
            col = 4;
            which = `Dst;
            child =
              A.Expand
                {
                  col = 3;
                  dir = A.Out;
                  label = Some sc.has_creator;
                  child =
                    A.WalkToRoot
                      {
                        col = 2;
                        rel_label = sc.reply_of;
                        child =
                          A.Limit
                            {
                              n = 10;
                              child =
                                A.Sort
                                  {
                                    keys = [ (nprop 2 sc.k_creation_date, `Desc) ];
                                    child =
                                      A.Filter
                                        {
                                          pred =
                                            E.Cmp
                                              ( E.Eq,
                                                E.LabelOf { col = 2; kind = E.KNode },
                                                E.Const (Value.Str message) );
                                          child =
                                            A.EndPoint
                                              {
                                                col = 1;
                                                which = `Src;
                                                child =
                                                  A.Expand
                                                    {
                                                      col = 0;
                                                      dir = A.In;
                                                      label = Some sc.has_creator;
                                                      child =
                                                        entity ~access
                                                          ~label:sc.person sc;
                                                    };
                                              };
                                        };
                                  };
                            };
                      };
                };
          };
    }

(* IS3: friends of a person with the friendship date.  KNOWS is
   undirected in LDBC; we store one directed edge, so the query is the
   union of both directions (returned as two plans). *)
let is3 sc ~access =
  let side dir which =
    A.Project
      {
        exprs =
          [
            nprop 2 sc.k_id;
            nprop 2 sc.k_first_name;
            nprop 2 sc.k_last_name;
            E.Prop { col = 1; kind = E.KRel; key = sc.k_creation_date };
          ];
        child =
          A.EndPoint
            {
              col = 1;
              which;
              child =
                A.Expand
                  {
                    col = 0;
                    dir;
                    label = Some sc.knows;
                    child = entity ~access ~label:sc.person sc;
                  };
            };
      }
  in
  [ side A.Out `Dst; side A.In `Src ]

(* IS4: message content and creation date. *)
let is4 sc ~access ~(msg : msg) =
  A.Project
    {
      exprs = [ nprop 0 sc.k_creation_date; nprop 0 sc.k_content ];
      child = entity ~access ~label:(msg_label sc msg) sc;
    }

(* IS5: creator of a message. *)
let is5 sc ~access ~(msg : msg) =
  A.Project
    {
      exprs = [ nprop 2 sc.k_id; nprop 2 sc.k_first_name; nprop 2 sc.k_last_name ];
      child =
        A.EndPoint
          {
            col = 1;
            which = `Dst;
            child =
              A.Expand
                {
                  col = 0;
                  dir = A.Out;
                  label = Some sc.has_creator;
                  child = entity ~access ~label:(msg_label sc msg) sc;
                };
          };
    }

(* IS6: the forum containing the message's thread root, and its
   moderator.  For comments this walks the REPLY_OF chain first. *)
let is6 sc ~access ~(msg : msg) =
  A.Project
    {
      exprs =
        [
          nprop 3 sc.k_id (* forum id *);
          nprop 3 sc.k_title;
          nprop 5 sc.k_id (* moderator id *);
          nprop 5 sc.k_first_name;
          nprop 5 sc.k_last_name;
        ];
      child =
        A.EndPoint
          {
            col = 4;
            which = `Dst;
            child =
              A.Expand
                {
                  col = 3;
                  dir = A.Out;
                  label = Some sc.has_moderator;
                  child =
                    A.EndPoint
                      {
                        col = 2;
                        which = `Src;
                        child =
                          A.Expand
                            {
                              col = 1;
                              dir = A.In;
                              label = Some sc.container_of;
                              child =
                                A.WalkToRoot
                                  {
                                    col = 0;
                                    rel_label = sc.reply_of;
                                    child = entity ~access ~label:(msg_label sc msg) sc;
                                  };
                            };
                      };
                };
          };
    }

(* IS7: replies to a message together with their authors, most recent
   first.  (The LDBC knows-flag between authors is omitted; see
   DESIGN.md.) *)
let is7 sc ~access ~(msg : msg) =
  A.Sort
    {
      keys = [ (E.Col 2, `Desc) ];
      child =
        A.Project
          {
            exprs =
              [
                nprop 2 sc.k_id (* comment id *);
                nprop 2 sc.k_content;
                nprop 2 sc.k_creation_date;
                nprop 4 sc.k_id (* author id *);
                nprop 4 sc.k_first_name;
                nprop 4 sc.k_last_name;
              ];
            child =
              A.EndPoint
                {
                  col = 3;
                  which = `Dst;
                  child =
                    A.Expand
                      {
                        col = 2;
                        dir = A.Out;
                        label = Some sc.has_creator;
                        child =
                          A.EndPoint
                            {
                              col = 1;
                              which = `Src;
                              child =
                                A.Expand
                                  {
                                    col = 0;
                                    dir = A.In;
                                    label = Some sc.reply_of;
                                    child = entity ~access ~label:(msg_label sc msg) sc;
                                  };
                            };
                      };
                };
          };
    }

(* The full SR query set as (name, plans, parameter source), in the order
   of the paper's figures: 1, 2-post, 2-cmt, 3, 4-post, 4-cmt, ...  A
   query is a list of plans whose results are concatenated (only IS3 has
   two). *)
type spec = {
  name : string;
  plans : access:access -> A.plan list;
  param : [ `Person | `Msg of msg ];
}

let all sc =
  [
    { name = "1"; plans = (fun ~access -> [ is1 sc ~access ]); param = `Person };
    {
      name = "2-post";
      plans = (fun ~access -> [ is2 sc ~access ~msg:`Post ]);
      param = `Person;
    };
    {
      name = "2-cmt";
      plans = (fun ~access -> [ is2 sc ~access ~msg:`Cmt ]);
      param = `Person;
    };
    { name = "3"; plans = (fun ~access -> is3 sc ~access); param = `Person };
    {
      name = "4-post";
      plans = (fun ~access -> [ is4 sc ~access ~msg:`Post ]);
      param = `Msg `Post;
    };
    {
      name = "4-cmt";
      plans = (fun ~access -> [ is4 sc ~access ~msg:`Cmt ]);
      param = `Msg `Cmt;
    };
    {
      name = "5-post";
      plans = (fun ~access -> [ is5 sc ~access ~msg:`Post ]);
      param = `Msg `Post;
    };
    {
      name = "5-cmt";
      plans = (fun ~access -> [ is5 sc ~access ~msg:`Cmt ]);
      param = `Msg `Cmt;
    };
    {
      name = "6-post";
      plans = (fun ~access -> [ is6 sc ~access ~msg:`Post ]);
      param = `Msg `Post;
    };
    {
      name = "6-cmt";
      plans = (fun ~access -> [ is6 sc ~access ~msg:`Cmt ]);
      param = `Msg `Cmt;
    };
    {
      name = "7-post";
      plans = (fun ~access -> [ is7 sc ~access ~msg:`Post ]);
      param = `Msg `Post;
    };
    {
      name = "7-cmt";
      plans = (fun ~access -> [ is7 sc ~access ~msg:`Cmt ]);
      param = `Msg `Cmt;
    };
  ]

(* Draw a parameter (an LDBC id) for a query spec. *)
let draw_param (ds : Gen.dataset) rng spec =
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  match spec.param with
  | `Person -> Value.Int (pick ds.Gen.person_ids)
  | `Msg `Post -> Value.Int (pick ds.Gen.post_ids)
  | `Msg `Cmt -> Value.Int (pick ds.Gen.comment_ids)
