(** IC-style complex-read extension queries (CR1..CR3): long-running
    traversals testing the paper's expectation that JIT gains grow with
    query complexity (Sections 7.5, 8). *)

module A = Query.Algebra

val cr1 : Schema.t -> access:[ `Index | `Scan ] -> A.plan
(** Persons two KNOWS hops away with a given first name (IC1-like). *)

val cr2 : Schema.t -> access:[ `Index | `Scan ] -> A.plan
(** The 20 most recent messages of the person's friends (IC2-like). *)

val cr3 : Schema.t -> access:[ `Index | `Scan ] -> A.plan
(** Tag popularity among friends' posts, group-by-count (IC6-like). *)

type spec = {
  name : string;
  plan : access:[ `Index | `Scan ] -> A.plan;
  nparams : int;
}

val all : Schema.t -> spec list
val draw_params : Gen.dataset -> Random.State.t -> spec -> Storage.Value.t array
