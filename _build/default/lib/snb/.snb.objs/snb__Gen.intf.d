lib/snb/gen.mli: Gindex Schema Storage
