lib/snb/gen.ml: Array Gindex List Printf Schema Storage
