lib/snb/complex_reads.mli: Gen Query Random Schema Storage
