lib/snb/complex_reads.ml: Array Gen Query Random Schema Storage
