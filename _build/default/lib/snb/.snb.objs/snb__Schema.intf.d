lib/snb/schema.mli: Jit Storage
