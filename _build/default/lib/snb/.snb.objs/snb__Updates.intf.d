lib/snb/updates.mli: Gen Query Random Schema Storage
