lib/snb/schema.ml: Jit Storage
