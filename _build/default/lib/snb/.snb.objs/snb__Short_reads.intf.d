lib/snb/short_reads.mli: Gen Query Random Schema Storage
