lib/snb/updates.ml: Array Gen Query Random Schema Storage
