lib/snb/short_reads.ml: Array Gen Query Random Schema Storage
