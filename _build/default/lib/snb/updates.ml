(* The LDBC-SNB Interactive Update queries IU1..IU8 (Section 7.2) as
   graph-algebra plans, executed transactionally through MVTO.

   All plans are single pipelines: existing endpoints are fetched with
   mid-pipeline index lookups ([AttachByIndex]), so the whole update is
   JIT-compilable (Fig. 9 exercises exactly these plans).

   Parameter convention is documented per query below; fresh LDBC ids are
   drawn from a monotonic counter so repeated executions keep inserting
   new entities, as the LDBC update streams do. *)

module A = Query.Algebra
module E = Query.Expr
module Value = Storage.Value
open Schema

let attach sc ~label value child =
  A.AttachByIndex { label; key = sc.k_id; value; child }

(* IU1 add person:
   params: 0 new person id, 1 creationDate, 2 city id, 3 tag id *)
let iu1 sc =
  A.CreateRel
    {
      label = sc.has_interest;
      src = 0;
      dst = 3;
      props = [];
      child =
        attach sc ~label:sc.tag (E.Param 3)
          (A.CreateRel
             {
               label = sc.is_located_in;
               src = 0;
               dst = 1;
               props = [];
               child =
                 attach sc ~label:sc.place (E.Param 2)
                   (A.CreateNode
                      {
                        label = sc.person;
                        props =
                          [
                            (sc.k_id, E.Param 0);
                            (sc.k_creation_date, E.Param 1);
                            (sc.k_birthday, E.Param 1);
                          ];
                        child = A.Unit;
                      });
             });
    }

(* IU2 add like to post: params: 0 person id, 1 post id, 2 creationDate *)
let like sc ~msg =
  A.CreateRel
    {
      label = sc.likes;
      src = 0;
      dst = 1;
      props = [ (sc.k_creation_date, E.Param 2) ];
      child =
        attach sc ~label:(msg_label sc msg) (E.Param 1)
          (attach sc ~label:sc.person (E.Param 0) A.Unit);
    }

let iu2 sc = like sc ~msg:`Post
let iu3 sc = like sc ~msg:`Cmt

(* IU4 add forum: params: 0 forum id, 1 creationDate, 2 moderator id *)
let iu4 sc =
  A.CreateRel
    {
      label = sc.has_moderator;
      src = 0;
      dst = 1;
      props = [];
      child =
        attach sc ~label:sc.person (E.Param 2)
          (A.CreateNode
             {
               label = sc.forum;
               props = [ (sc.k_id, E.Param 0); (sc.k_creation_date, E.Param 1) ];
               child = A.Unit;
             });
    }

(* IU5 add forum membership: params: 0 forum id, 1 person id, 2 joinDate *)
let iu5 sc =
  A.CreateRel
    {
      label = sc.has_member;
      src = 0;
      dst = 1;
      props = [ (sc.k_creation_date, E.Param 2) ];
      child =
        attach sc ~label:sc.person (E.Param 1)
          (attach sc ~label:sc.forum (E.Param 0) A.Unit);
    }

(* IU6 add post: params: 0 post id, 1 creationDate, 2 length,
   3 author id, 4 forum id *)
let iu6 sc =
  A.CreateRel
    {
      label = sc.container_of;
      src = 3;
      dst = 0;
      props = [];
      child =
        attach sc ~label:sc.forum (E.Param 4)
          (A.CreateRel
             {
               label = sc.has_creator;
               src = 0;
               dst = 1;
               props = [];
               child =
                 attach sc ~label:sc.person (E.Param 3)
                   (A.CreateNode
                      {
                        label = sc.post;
                        props =
                          [
                            (sc.k_id, E.Param 0);
                            (sc.k_creation_date, E.Param 1);
                            (sc.k_length, E.Param 2);
                          ];
                        child = A.Unit;
                      });
             });
    }

(* IU7 add comment replying to a post: params: 0 comment id,
   1 creationDate, 2 length, 3 author id, 4 parent post id *)
let iu7 sc =
  A.CreateRel
    {
      label = sc.reply_of;
      src = 0;
      dst = 3;
      props = [];
      child =
        attach sc ~label:sc.post (E.Param 4)
          (A.CreateRel
             {
               label = sc.has_creator;
               src = 0;
               dst = 1;
               props = [];
               child =
                 attach sc ~label:sc.person (E.Param 3)
                   (A.CreateNode
                      {
                        label = sc.comment;
                        props =
                          [
                            (sc.k_id, E.Param 0);
                            (sc.k_creation_date, E.Param 1);
                            (sc.k_length, E.Param 2);
                          ];
                        child = A.Unit;
                      });
             });
    }

(* IU8 add friendship: params: 0 person id, 1 person id, 2 creationDate *)
let iu8 sc =
  A.CreateRel
    {
      label = sc.knows;
      src = 0;
      dst = 1;
      props = [ (sc.k_creation_date, E.Param 2) ];
      child =
        attach sc ~label:sc.person (E.Param 1)
          (attach sc ~label:sc.person (E.Param 0) A.Unit);
    }

(* --- Query set ------------------------------------------------------------ *)

(* fresh-id source for the update stream *)
type ctx = { mutable next_fresh : int }

let make_ctx () = { next_fresh = 90_000_000 }

type spec = {
  name : string;
  plan : Schema.t -> A.plan;
  draw : Gen.dataset -> Random.State.t -> ctx -> Value.t array;
      (* parameter vector for one execution *)
  creates : (Schema.t -> int) option; (* label of the created node, if any *)
}

let fresh ctx =
  let id = ctx.next_fresh in
  ctx.next_fresh <- id + 1;
  id

let now = 1_500_000_000_000

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let all : spec list =
  [
    {
      name = "1";
      plan = iu1;
      draw =
        (fun ds rng ctx ->
          [|
            Value.Int (fresh ctx);
            Value.Int now;
            Value.Int (Random.State.int rng (Array.length ds.Gen.places));
            Value.Int (Random.State.int rng (Array.length ds.Gen.tags));
          |]);
      creates = Some (fun sc -> sc.person);
    };
    {
      name = "2";
      plan = iu2;
      draw =
        (fun ds rng _ ->
          [|
            Value.Int (pick rng ds.Gen.person_ids);
            Value.Int (pick rng ds.Gen.post_ids);
            Value.Int now;
          |]);
      creates = None;
    };
    {
      name = "3";
      plan = iu3;
      draw =
        (fun ds rng _ ->
          [|
            Value.Int (pick rng ds.Gen.person_ids);
            Value.Int (pick rng ds.Gen.comment_ids);
            Value.Int now;
          |]);
      creates = None;
    };
    {
      name = "4";
      plan = iu4;
      draw =
        (fun ds rng ctx ->
          [|
            Value.Int (fresh ctx);
            Value.Int now;
            Value.Int (pick rng ds.Gen.person_ids);
          |]);
      creates = Some (fun sc -> sc.forum);
    };
    {
      name = "5";
      plan = iu5;
      draw =
        (fun ds rng _ ->
          [|
            Value.Int (Gen.forum_base + Random.State.int rng (Array.length ds.Gen.forums));
            Value.Int (pick rng ds.Gen.person_ids);
            Value.Int now;
          |]);
      creates = None;
    };
    {
      name = "6";
      plan = iu6;
      draw =
        (fun ds rng ctx ->
          [|
            Value.Int (fresh ctx);
            Value.Int now;
            Value.Int (Random.State.int rng 500);
            Value.Int (pick rng ds.Gen.person_ids);
            Value.Int
              (Gen.forum_base + Random.State.int rng (Array.length ds.Gen.forums));
          |]);
      creates = Some (fun sc -> sc.post);
    };
    {
      name = "7";
      plan = iu7;
      draw =
        (fun ds rng ctx ->
          [|
            Value.Int (fresh ctx);
            Value.Int now;
            Value.Int (Random.State.int rng 500);
            Value.Int (pick rng ds.Gen.person_ids);
            Value.Int (pick rng ds.Gen.post_ids);
          |]);
      creates = Some (fun sc -> sc.comment);
    };
    {
      name = "8";
      plan = iu8;
      draw =
        (fun ds rng _ ->
          [|
            Value.Int (pick rng ds.Gen.person_ids);
            Value.Int (pick rng ds.Gen.person_ids);
            Value.Int now;
          |]);
      creates = None;
    };
  ]
