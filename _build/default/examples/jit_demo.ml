(* JIT demo: the same query through the AOT interpreter, the JIT compiler
   (showing the generated IR before and after the optimisation cascade),
   the persistent code cache, and adaptive execution.

   dune exec examples/jit_demo.exe *)

module Value = Storage.Value
module A = Query.Algebra
module E = Query.Expr
module Engine = Jit.Engine
module SR = Snb.Short_reads

let () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 27) () in
  let ds =
    Snb.Gen.generate ~params:{ Snb.Gen.default_params with sf = 0.3 } (Core.store db)
  in
  let sc = ds.Snb.Gen.schema in
  let config =
    { Engine.default_config with prop_tag = Snb.Schema.prop_tag sc }
  in
  (* a pipeline: scan persons, filter by age of activity, expand KNOWS,
     project the friend id *)
  let plan =
    A.Project
      {
        exprs = [ E.Prop { col = 2; kind = E.KNode; key = sc.Snb.Schema.k_id } ];
        child =
          A.EndPoint
            {
              col = 1;
              which = `Dst;
              child =
                A.Expand
                  {
                    col = 0;
                    dir = A.Out;
                    label = Some sc.Snb.Schema.knows;
                    child = A.NodeScan { label = Some sc.Snb.Schema.person };
                  };
            };
      }
  in

  (* --- show the IR ----------------------------------------------------- *)
  let raw = Jit.Codegen.codegen ~prop_tag:(Snb.Schema.prop_tag sc) plan in
  Printf.printf "raw IR: %d blocks, %d instructions\n"
    (Array.length raw.Jit.Ir.blocks) (Jit.Ir.instr_count raw);
  let opt = Jit.Passes.optimize ~level:Jit.Passes.O1 (Jit.Codegen.codegen ~prop_tag:(Snb.Schema.prop_tag sc) plan) in
  Printf.printf "after mem2reg+combine+dce+simplifycfg: %d blocks, %d instructions\n"
    (Array.length opt.Jit.Ir.blocks) (Jit.Ir.instr_count opt);
  print_endline "\noptimised IR:";
  Fmt.pr "%a@." Jit.Ir.pp_func opt;

  (* --- run in all three modes ------------------------------------------ *)
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e6)
  in
  let (rows_aot, _), t_aot =
    wall (fun () -> Core.query db ~mode:Engine.Interp ~config ~params:[||] plan)
  in
  let (rows_jit1, r1), t_jit1 =
    wall (fun () -> Core.query db ~mode:Engine.Jit ~config ~params:[||] plan)
  in
  let (rows_jit2, r2), t_jit2 =
    wall (fun () -> Core.query db ~mode:Engine.Jit ~config ~params:[||] plan)
  in
  Core.set_workers db 2;
  let (rows_adp, r3), t_adp =
    wall (fun () ->
        Core.query db ~mode:Engine.Adaptive ~config ~parallel:true ~params:[||] plan)
  in
  Printf.printf "aot interpret : %6d rows in %8.0f us\n" (List.length rows_aot) t_aot;
  Printf.printf "jit (compile) : %6d rows in %8.0f us  (compile %d us, cache %s)\n"
    (List.length rows_jit1) t_jit1
    (r1.Engine.compile_modeled_ns / 1000)
    (if r1.Engine.cache_hit then "hit" else "miss");
  Printf.printf "jit (cached)  : %6d rows in %8.0f us  (cache %s)\n"
    (List.length rows_jit2) t_jit2
    (if r2.Engine.cache_hit then "hit" else "miss");
  Printf.printf "adaptive      : %6d rows in %8.0f us  (%d morsels aot, %d jit)\n"
    (List.length rows_adp) t_adp r3.Engine.morsels_interp r3.Engine.morsels_jit;
  assert (
    List.sort compare (List.map Array.to_list rows_aot)
    = List.sort compare (List.map Array.to_list rows_jit1));

  (* --- the code cache survives restarts -------------------------------- *)
  Core.crash db;
  let db = Core.reopen db in
  let _, r4 = Core.query db ~mode:Engine.Jit ~config ~params:[||] plan in
  Printf.printf "after crash+reopen, first jit run: cache %s\n"
    (if r4.Engine.cache_hit then "hit (persistent object store)" else "miss");
  Core.shutdown db;
  print_endline "jit_demo done."
