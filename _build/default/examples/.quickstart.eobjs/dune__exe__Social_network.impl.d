examples/social_network.ml: Array Core Jit List Mvcc Pmem Printf Random Snb Storage Unix
