examples/quickstart.mli:
