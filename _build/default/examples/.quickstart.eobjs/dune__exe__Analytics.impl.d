examples/analytics.ml: Array Core Domain Hashtbl List Mvcc Printf Query Random Snb Storage
