examples/crash_recovery.ml: Array Core Mvcc Printf Query Storage Unix
