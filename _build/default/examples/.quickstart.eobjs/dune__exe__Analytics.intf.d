examples/analytics.mli:
