examples/jit_demo.ml: Array Core Fmt Jit List Printf Query Snb Storage Unix
