examples/quickstart.ml: Core Jit List Printf Query Storage
