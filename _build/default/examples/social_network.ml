(* Social-network example: generate an LDBC-SNB-like graph, build
   indexes, and run the interactive short-read and update workloads.

   dune exec examples/social_network.exe *)

module Value = Storage.Value
module Engine = Jit.Engine
module SR = Snb.Short_reads
module IU = Snb.Updates

let () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 27) () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = 0.2 }
      (Core.store db)
  in
  let sc = ds.Snb.Gen.schema in
  Printf.printf "generated: %d persons, %d posts, %d comments, %d forums\n"
    (Array.length ds.Snb.Gen.persons)
    (Array.length ds.Snb.Gen.posts)
    (Array.length ds.Snb.Gen.comments)
    (Array.length ds.Snb.Gen.forums);
  Printf.printf "total: %d nodes, %d relationships\n" (Core.node_count db)
    (Core.rel_count db);

  (* secondary indexes on the LDBC ids (hybrid DRAM/PMem B+-trees) *)
  List.iter
    (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
    [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ];

  (* --- short reads ------------------------------------------------------ *)
  let rng = Random.State.make [| 2026 |] in
  print_endline "\ninteractive short reads (indexed, interpreted):";
  List.iter
    (fun spec ->
      let param = SR.draw_param ds rng spec in
      let t0 = Unix.gettimeofday () in
      let rows =
        List.concat_map
          (fun plan -> fst (Core.query db ~params:[| param |] plan))
          (spec.SR.plans ~access:`Index)
      in
      Printf.printf "  IS%-7s %3d rows  %8.1f us\n" spec.SR.name
        (List.length rows)
        ((Unix.gettimeofday () -. t0) *. 1e6))
    (SR.all sc);

  (* IS1 in detail: profile of one person *)
  let param = Value.Int ds.Snb.Gen.person_ids.(1) in
  (match Core.query db ~params:[| param |] (SR.is1 sc ~access:`Index) with
  | [ [| fn; ln; _; ip; _; _; _; _ |] ], _ ->
      let s = function Value.Str c -> Core.decode db c | v -> Value.to_string v in
      Printf.printf "\nperson %s: %s %s from %s\n" (Value.to_string param) (s fn)
        (s ln) (s ip)
  | _ -> ());

  (* --- transactional updates -------------------------------------------- *)
  print_endline "\ninteractive updates (each its own MVTO transaction):";
  let ctx = IU.make_ctx () in
  List.iter
    (fun spec ->
      let params = spec.IU.draw ds rng ctx in
      let _, _, commit_ns = Core.execute_update db ~params (spec.IU.plan sc) in
      Printf.printf "  IU%-2s committed (commit persisted in %d sim-ns)\n"
        spec.IU.name commit_ns)
    IU.all;
  Printf.printf "after updates: %d nodes, %d relationships\n"
    (Core.node_count db) (Core.rel_count db);

  (* the freshly inserted post is immediately queryable through the
     maintained index *)
  let stats = Core.txn_stats db in
  Printf.printf "transactions: %d commits, %d aborts\n"
    stats.Mvcc.Mvto.commits stats.Mvcc.Mvto.aborts;

  (* --- media accounting -------------------------------------------------- *)
  let s = Pmem.Media.stats (Core.media db) in
  Printf.printf
    "\nmedia: %d line reads, %d line writes, %d flushes, %d fences, %d allocs\n"
    s.Pmem.Media.reads s.Pmem.Media.writes s.Pmem.Media.flushes
    s.Pmem.Media.fences s.Pmem.Media.allocs;
  Printf.printf "simulated time elapsed: %.3f ms\n"
    (float_of_int (Pmem.Media.clock (Core.media db)) /. 1e6)
