(* Quickstart: create a persistent graph, run transactions and queries.

   dune exec examples/quickstart.exe *)

module Value = Storage.Value
module A = Query.Algebra
module E = Query.Expr
module Engine = Jit.Engine

let () =
  (* a PMem-backed database (simulated persistent memory) *)
  let db = Core.create ~mode:`Pmem () in

  (* --- transactional inserts ------------------------------------------ *)
  let alice, bob, carol =
    Core.with_txn db (fun txn ->
        let alice =
          Core.create_node db txn ~label:"Person"
            ~props:[ ("name", Value.Text "Alice"); ("age", Value.Int 34) ]
        in
        let bob =
          Core.create_node db txn ~label:"Person"
            ~props:[ ("name", Value.Text "Bob"); ("age", Value.Int 27) ]
        in
        let carol =
          Core.create_node db txn ~label:"Person"
            ~props:[ ("name", Value.Text "Carol"); ("age", Value.Int 41) ]
        in
        ignore
          (Core.create_rel db txn ~label:"KNOWS" ~src:alice ~dst:bob
             ~props:[ ("since", Value.Int 2019) ]);
        ignore
          (Core.create_rel db txn ~label:"KNOWS" ~src:bob ~dst:carol
             ~props:[ ("since", Value.Int 2021) ]);
        (alice, bob, carol))
  in
  Printf.printf "created %d nodes, %d relationships\n" (Core.node_count db)
    (Core.rel_count db);

  (* --- point reads ------------------------------------------------------ *)
  Core.with_txn db (fun txn ->
      (match Core.node_prop db txn alice ~key:"name" with
      | Some (Value.Text n) -> Printf.printf "node %d is %s\n" alice n
      | _ -> ());
      Printf.printf "bob knows %d people\n"
        (List.length (Core.out_rels db txn bob)));

  (* --- snapshot isolation ----------------------------------------------- *)
  let reader = Core.begin_txn db in
  Core.with_txn db (fun txn ->
      Core.set_node_prop db txn alice ~key:"age" (Value.Int 35));
  (* the reader still sees the old snapshot *)
  (match Core.node_prop db reader alice ~key:"age" with
  | Some (Value.Int age) -> Printf.printf "reader's snapshot age: %d\n" age
  | _ -> ());
  Core.commit db reader;

  (* --- a declarative query: friends-of-friends names -------------------- *)
  let knows = Core.code db "KNOWS" and name = Core.code db "name" in
  let plan =
    A.Project
      {
        exprs = [ E.Prop { col = 2; kind = E.KNode; key = name } ];
        child =
          A.EndPoint
            {
              col = 1;
              which = `Dst;
              child =
                A.Expand
                  {
                    col = 0;
                    dir = A.Out;
                    label = Some knows;
                    child = A.NodeById { id = E.Param 0 };
                  };
            };
      }
  in
  let rows, _ = Core.query db ~params:[| Value.Int alice |] plan in
  List.iter
    (function
      | [| Value.Str c |] -> Printf.printf "alice knows: %s\n" (Core.decode db c)
      | _ -> ())
    rows;

  (* --- the same query, JIT-compiled ------------------------------------- *)
  let rows_jit, report =
    Core.query db ~mode:Engine.Jit ~params:[| Value.Int alice |] plan
  in
  Printf.printf "jit run: %d rows, %d IR instructions, cache %s\n"
    (List.length rows_jit) report.Engine.ir_instrs
    (if report.Engine.cache_hit then "hit" else "miss");

  (* --- survive a power failure ------------------------------------------ *)
  ignore carol;
  Core.crash db;
  let db = Core.reopen db in
  Printf.printf "after crash+recovery: %d nodes, %d relationships\n"
    (Core.node_count db) (Core.rel_count db);
  Core.with_txn db (fun txn ->
      match Core.node_prop db txn alice ~key:"age" with
      | Some (Value.Int age) -> Printf.printf "alice's age is durable: %d\n" age
      | _ -> print_endline "lost alice?!");
  print_endline "quickstart done."
