(* Crash-recovery example: power failures at awkward moments, with
   random cache-line eviction, and what survives them.

   dune exec examples/crash_recovery.exe *)

module Value = Storage.Value
module V = Mvcc.Version

let () =
  let db = Core.create ~mode:`Pmem () in

  (* committed data *)
  let accounts =
    Core.with_txn db (fun txn ->
        Array.init 4 (fun i ->
            Core.create_node db txn ~label:"Account"
              ~props:
                [ ("id", Value.Int i); ("balance", Value.Int 100) ]))
  in
  ignore (Core.create_index db ~label:"Account" ~prop:"id" ());
  Printf.printf "4 accounts created and committed\n";

  (* a transfer transaction is interrupted by a power failure between its
     updates - after recovery, either both or neither must be visible *)
  let txn = Core.begin_txn db in
  Core.set_node_prop db txn accounts.(0) ~key:"balance" (Value.Int 50);
  Core.set_node_prop db txn accounts.(1) ~key:"balance" (Value.Int 150);
  Printf.printf "transfer in flight (uncommitted)... power failure!\n";
  Core.crash ~evict_prob:0.5 db;

  let db = Core.reopen db in
  let balances txn =
    Array.map
      (fun a ->
        match Core.node_prop db txn a ~key:"balance" with
        | Some (Value.Int b) -> b
        | _ -> -1)
      accounts
  in
  Core.with_txn db (fun txn ->
      let b = balances txn in
      Printf.printf "after recovery: balances = [%d; %d; %d; %d]\n" b.(0) b.(1)
        b.(2) b.(3);
      assert (Array.for_all (fun x -> x = 100) b);
      print_endline "the interrupted transfer left no trace: atomicity holds");

  (* now commit a transfer, crash *during* nothing in particular, and
     watch it survive *)
  Core.with_txn db (fun txn ->
      Core.set_node_prop db txn accounts.(0) ~key:"balance" (Value.Int 25);
      Core.set_node_prop db txn accounts.(3) ~key:"balance" (Value.Int 175));
  Core.crash ~evict_prob:0.5 db;
  let db = Core.reopen db in
  Core.with_txn db (fun txn ->
      let b = balances txn in
      Printf.printf "after second crash: balances = [%d; %d; %d; %d]\n" b.(0)
        b.(1) b.(2) b.(3);
      assert (b.(0) = 25 && b.(3) = 175);
      print_endline "the committed transfer is durable");

  (* hybrid index recovery: inner levels are rebuilt from PMem leaves *)
  let t0 = Unix.gettimeofday () in
  let db = Core.reopen db in
  Printf.printf "index recovery on reopen took %.3f ms (leaf-scan rebuild)\n"
    ((Unix.gettimeofday () -. t0) *. 1e3);
  Core.with_txn db (fun txn ->
      let g = Core.source db txn in
      let hits = ref 0 in
      g.Query.Source.index_lookup ~label:(Core.code db "Account")
        ~key:(Core.code db "id") (Value.Int 2) (fun _ -> incr hits);
      Printf.printf "index lookup after recovery: %d hit(s)\n" !hits);
  print_endline "crash_recovery done."
