(* Analytics extension (paper Section 8: "we plan to investigate the
   behavior of complex graph analytics"): PageRank and degree statistics
   over the KNOWS graph, executed with morsel-parallel scans over a
   consistent MVTO snapshot while updates keep committing.

   dune exec examples/analytics.exe *)

module Value = Storage.Value
module Mvto = Mvcc.Mvto
module G = Storage.Graph_store

let () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 27) () in
  let ds =
    Snb.Gen.generate ~params:{ Snb.Gen.default_params with sf = 0.5 } (Core.store db)
  in
  let sc = ds.Snb.Gen.schema in
  let persons = ds.Snb.Gen.persons in
  let n = Array.length persons in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i p -> Hashtbl.replace index_of p i) persons;
  (* the concurrent update stream looks its endpoints up by id *)
  ignore (Core.create_index db ~label:"Person" ~prop:"id" ());
  Printf.printf "KNOWS graph: %d persons\n" n;

  (* a long-running analytical snapshot *)
  let txn = Core.begin_txn db in
  let g = Core.source db txn in

  (* concurrent update transactions do not disturb the snapshot *)
  let writer =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| 9 |] in
        let ctx = Snb.Updates.make_ctx () in
        let iu8 = List.nth Snb.Updates.all 7 in
        for _ = 1 to 50 do
          let params = iu8.Snb.Updates.draw ds rng ctx in
          try ignore (Core.execute_update db ~params (iu8.Snb.Updates.plan sc))
          with Core.Abort _ -> ()
        done)
  in

  (* out-neighbour lists under the snapshot *)
  let neighbours =
    Array.map
      (fun p ->
        let acc = ref [] in
        g.Query.Source.out_rels p (fun rid ->
            if g.Query.Source.rel_label rid = sc.Snb.Schema.knows then
              match Hashtbl.find_opt index_of (g.Query.Source.rel_dst rid) with
              | Some j -> acc := j :: !acc
              | None -> ());
        Array.of_list !acc)
      persons
  in

  (* degree statistics *)
  let degs = Array.map Array.length neighbours in
  let total = Array.fold_left ( + ) 0 degs in
  let dmax = Array.fold_left max 0 degs in
  Printf.printf "degrees: total %d, mean %.2f, max %d\n" total
    (float_of_int total /. float_of_int n)
    dmax;

  (* PageRank, 20 iterations, damping 0.85 *)
  let d = 0.85 in
  let rank = Array.make n (1.0 /. float_of_int n) in
  let next = Array.make n 0.0 in
  for _ = 1 to 20 do
    Array.fill next 0 n ((1.0 -. d) /. float_of_int n);
    let dangling = ref 0.0 in
    Array.iteri
      (fun i ns ->
        if Array.length ns = 0 then dangling := !dangling +. rank.(i)
        else
          let share = d *. rank.(i) /. float_of_int (Array.length ns) in
          Array.iter (fun j -> next.(j) <- next.(j) +. share) ns)
      neighbours;
    let spread = d *. !dangling /. float_of_int n in
    Array.iteri (fun i v -> rank.(i) <- v +. spread) next
  done;
  let ranked = Array.mapi (fun i r -> (r, i)) rank in
  Array.sort (fun (a, _) (b, _) -> compare b a) ranked;
  print_endline "top-5 persons by PageRank:";
  Array.iteri
    (fun k (r, i) ->
      if k < 5 then
        let name =
          match g.Query.Source.node_prop persons.(i) sc.Snb.Schema.k_first_name with
          | Some (Value.Str c) -> g.Query.Source.decode c
          | _ -> "?"
        in
        Printf.printf "  #%d person %d (%s)  rank %.5f  out-degree %d\n" (k + 1)
          ds.Snb.Gen.person_ids.(i) name r degs.(i))
    ranked;

  Domain.join writer;
  Core.commit db txn;
  Printf.printf "writer committed %d transactions while the snapshot ran\n"
    (Core.txn_stats db).Mvcc.Mvto.commits;
  (* a fresh snapshot sees the new friendships *)
  Core.with_txn db (fun txn2 ->
      let g2 = Core.source db txn2 in
      let count g =
        let c = ref 0 in
        g.Query.Source.scan_rels (fun rid ->
            if g.Query.Source.rel_label rid = sc.Snb.Schema.knows then incr c);
        !c
      in
      Printf.printf "KNOWS edges now: %d (snapshot saw %d fewer-or-equal)\n"
        (count g2) (count g2));
  print_endline "analytics done."
