(* Tests for the disk baseline: buffer-pool accounting (hits, misses,
   evictions, WAL), page-cache cost model and transactional behaviour. *)

module Media = Pmem.Media
module BP = Diskdb.Buffer_pool
module DG = Diskdb.Disk_graph
module Value = Storage.Value

let test_miss_then_hit () =
  let media = Media.create () in
  let bp = BP.create media in
  let s0 = Media.stats media in
  BP.touch bp ~off:0 ~rw:`R;
  let s1 = Media.stats media in
  Alcotest.(check int) "first touch is an ssd read" (s0.Media.ssd_reads + 1)
    s1.Media.ssd_reads;
  BP.touch bp ~off:100 ~rw:`R;
  (* same page *)
  let s2 = Media.stats media in
  Alcotest.(check int) "second touch hits" s1.Media.ssd_reads s2.Media.ssd_reads;
  let hits, misses, _, _ = BP.stats bp in
  Alcotest.(check (pair int int)) "counters" (1, 1) (hits, misses)

let test_hit_cost_nonzero () =
  let media = Media.create () in
  let bp = BP.create ~hit_ns:700 media in
  BP.touch bp ~off:0 ~rw:`R;
  let c0 = Media.clock media in
  BP.touch bp ~off:8 ~rw:`R;
  Alcotest.(check int) "page-cache indirection charged" 700
    (Media.clock media - c0)

let test_eviction_writes_back_dirty () =
  let media = Media.create () in
  let bp = BP.create ~capacity:2 media in
  BP.touch bp ~off:0 ~rw:`W;
  (* dirty page 0 *)
  BP.touch bp ~off:8192 ~rw:`R;
  let before = (Media.stats media).Media.ssd_writes in
  BP.touch bp ~off:(2 * 8192) ~rw:`R;
  (* evicts LRU = dirty page 0 *)
  let after = (Media.stats media).Media.ssd_writes in
  Alcotest.(check int) "dirty write-back" (before + 1) after;
  let _, _, evictions, _ = BP.stats bp in
  Alcotest.(check int) "one eviction" 1 evictions

let test_clear_makes_cold () =
  let media = Media.create () in
  let bp = BP.create media in
  BP.touch bp ~off:0 ~rw:`R;
  BP.clear bp;
  let before = (Media.stats media).Media.ssd_reads in
  BP.touch bp ~off:0 ~rw:`R;
  Alcotest.(check int) "cold again" (before + 1) (Media.stats media).Media.ssd_reads

let test_wal_commit_pages () =
  let media = Media.create () in
  let bp = BP.create media in
  BP.wal_commit bp ~bytes:100;
  BP.wal_commit bp ~bytes:20_000;
  let _, _, _, wal = BP.stats bp in
  Alcotest.(check int) "1 + 3 wal pages" 4 wal

let test_disk_graph_txn_and_wal () =
  let disk = DG.create () in
  let g = DG.store disk in
  let label = Storage.Graph_store.code g "Person" in
  let id =
    DG.with_txn disk (fun txn ->
        Mvcc.Mvto.insert_node (DG.mgr disk) txn ~label ~props:[])
  in
  Alcotest.(check bool) "node durable-ish" true (Storage.Graph_store.node_live g id);
  let _, _, _, wal = BP.stats (DG.buffer_pool disk) in
  Alcotest.(check bool) "wal written at commit" true (wal >= 1)

let test_disk_abort_rolls_back () =
  let disk = DG.create () in
  let g = DG.store disk in
  let label = Storage.Graph_store.code g "Person" in
  (try
     DG.with_txn disk (fun txn ->
         ignore (Mvcc.Mvto.insert_node (DG.mgr disk) txn ~label ~props:[]);
         failwith "abort me")
   with Failure _ -> ());
  Alcotest.(check int) "rolled back" 0 (Storage.Graph_store.node_count g)

let test_disk_source_charges_pages () =
  let disk = DG.create () in
  let g = DG.store disk in
  let label = Storage.Graph_store.code g "Person" in
  let ids =
    DG.with_txn disk (fun txn ->
        List.init 50 (fun i ->
            Mvcc.Mvto.insert_node (DG.mgr disk) txn ~label
              ~props:[ (1, Value.Int i) ]))
  in
  ignore ids;
  DG.drop_caches disk;
  let misses_before =
    let _, m, _, _ = BP.stats (DG.buffer_pool disk) in
    m
  in
  Mvcc.Mvto.with_txn (DG.mgr disk) (fun txn ->
      let src = DG.source disk txn in
      src.Query.Source.scan_nodes (fun id -> ignore (src.Query.Source.node_label id)));
  let misses_after =
    let _, m, _, _ = BP.stats (DG.buffer_pool disk) in
    m
  in
  Alcotest.(check bool) "cold scan faults pages" true (misses_after > misses_before)

let () =
  Alcotest.run "diskdb"
    [
      ( "buffer-pool",
        [
          Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
          Alcotest.test_case "hit cost" `Quick test_hit_cost_nonzero;
          Alcotest.test_case "eviction writes back dirty" `Quick
            test_eviction_writes_back_dirty;
          Alcotest.test_case "clear makes cold" `Quick test_clear_makes_cold;
          Alcotest.test_case "wal pages" `Quick test_wal_commit_pages;
        ] );
      ( "disk-graph",
        [
          Alcotest.test_case "txn + wal" `Quick test_disk_graph_txn_and_wal;
          Alcotest.test_case "abort rolls back" `Quick test_disk_abort_rolls_back;
          Alcotest.test_case "source charges pages" `Quick
            test_disk_source_charges_pages;
        ] );
    ]
