(* System-level tests: the SNB workload over the full engine (core
   facade), cross-checking every query across access paths (scan vs
   index), execution modes (AOT vs JIT vs adaptive) and backends (PMem
   engine vs disk baseline), plus end-to-end crash recovery. *)

module Value = Storage.Value
module A = Query.Algebra
module Engine = Jit.Engine
module Mvto = Mvcc.Mvto
module SR = Snb.Short_reads
module IU = Snb.Updates

let norm rows = List.sort compare (List.map Array.to_list rows)

let mk_dataset ?(sf = 0.05) ?(mode = `Pmem) () =
  let db = Core.create ~mode ~pool_size:(1 lsl 26) () in
  let ds = Snb.Gen.generate ~params:{ Snb.Gen.default_params with sf } (Core.store db) in
  (db, ds)

let mk_indexed ?sf () =
  let db, ds = mk_dataset ?sf () in
  let sc = ds.Snb.Gen.schema in
  let mk label = Core.create_index db ~label ~prop:"id" () in
  List.iter
    (fun l -> ignore (mk l))
    [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ];
  ignore sc;
  (db, ds)

(* --- Generator ----------------------------------------------------------------- *)

let test_generator_shape () =
  let _db, ds = mk_dataset ~sf:0.05 () in
  Alcotest.(check int) "persons" 50 (Array.length ds.Snb.Gen.persons);
  Alcotest.(check bool) "posts" true (Array.length ds.Snb.Gen.posts >= 100);
  Alcotest.(check bool) "comments exist" true (Array.length ds.Snb.Gen.comments > 0);
  Alcotest.(check int) "ids aligned" (Array.length ds.Snb.Gen.posts)
    (Array.length ds.Snb.Gen.post_ids);
  (* degree distribution is skewed: someone has far more than the mean *)
  let g = ds.Snb.Gen.store in
  let max_deg = ref 0 and total = ref 0 in
  Array.iter
    (fun p ->
      let d = Storage.Graph_store.out_degree g p in
      total := !total + d;
      if d > !max_deg then max_deg := d)
    ds.Snb.Gen.persons;
  let mean = !total / Array.length ds.Snb.Gen.persons in
  Alcotest.(check bool)
    (Printf.sprintf "skew (max %d vs mean %d)" !max_deg mean)
    true
    (!max_deg > 2 * mean)

let test_generator_deterministic () =
  let _, ds1 = mk_dataset ~sf:0.05 () in
  let _, ds2 = mk_dataset ~sf:0.05 () in
  Alcotest.(check int) "same posts" (Array.length ds1.Snb.Gen.posts)
    (Array.length ds2.Snb.Gen.posts);
  Alcotest.(check int) "same comments" (Array.length ds1.Snb.Gen.comments)
    (Array.length ds2.Snb.Gen.comments);
  Alcotest.(check int) "same rels"
    (Storage.Graph_store.rel_count ds1.Snb.Gen.store)
    (Storage.Graph_store.rel_count ds2.Snb.Gen.store)

(* --- Short reads: cross-validation ---------------------------------------------- *)

let run_spec db ds spec ~access ~mode param =
  let sc = ds.Snb.Gen.schema in
  let plans = spec.SR.plans ~access in
  ignore sc;
  List.concat_map
    (fun plan ->
      let rows, _ = Core.query db ~mode ~params:[| param |] plan in
      rows)
    plans

let test_sr_scan_equals_index () =
  let db, ds = mk_indexed () in
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun spec ->
      for _ = 1 to 5 do
        let param = SR.draw_param ds rng spec in
        let scan = run_spec db ds spec ~access:`Scan ~mode:Engine.Interp param in
        let index = run_spec db ds spec ~access:`Index ~mode:Engine.Interp param in
        Alcotest.(check bool)
          (Printf.sprintf "SR%s scan==index (%d rows)" spec.SR.name
             (List.length scan))
          true
          (norm scan = norm index)
      done)
    (SR.all ds.Snb.Gen.schema)

let test_sr_jit_equals_interp () =
  let db, ds = mk_indexed () in
  let rng = Random.State.make [| 8 |] in
  let config =
    { Engine.default_config with prop_tag = Snb.Schema.prop_tag ds.Snb.Gen.schema }
  in
  List.iter
    (fun spec ->
      for _ = 1 to 3 do
        let param = SR.draw_param ds rng spec in
        List.iter
          (fun access ->
            let plans = spec.SR.plans ~access in
            List.iter
              (fun plan ->
                let interp, _ =
                  Core.query db ~mode:Engine.Interp ~params:[| param |] plan
                in
                let jit, report =
                  Core.query db ~mode:Engine.Jit ~config ~params:[| param |] plan
                in
                Alcotest.(check bool)
                  (Printf.sprintf "SR%s no fallback" spec.SR.name)
                  false report.Engine.fell_back;
                Alcotest.(check bool)
                  (Printf.sprintf "SR%s jit==interp" spec.SR.name)
                  true
                  (norm interp = norm jit))
              plans)
          [ `Scan; `Index ]
      done)
    (SR.all ds.Snb.Gen.schema)

let test_sr_sanity () =
  let db, ds = mk_indexed () in
  let sc = ds.Snb.Gen.schema in
  (* IS1 for a known person returns exactly one row with 8 columns *)
  let param = Value.Int ds.Snb.Gen.person_ids.(3) in
  let rows, _ =
    Core.query db ~mode:Engine.Interp ~params:[| param |] (SR.is1 sc ~access:`Index)
  in
  (match rows with
  | [ row ] -> Alcotest.(check int) "is1 columns" 8 (Array.length row)
  | _ -> Alcotest.failf "is1 returned %d rows" (List.length rows));
  (* IS4 on a post returns its content *)
  let param = Value.Int ds.Snb.Gen.post_ids.(0) in
  let rows, _ =
    Core.query db ~mode:Engine.Interp ~params:[| param |]
      (SR.is4 sc ~access:`Index ~msg:`Post)
  in
  Alcotest.(check int) "is4 one row" 1 (List.length rows);
  (* IS2 returns at most 10 messages *)
  let param = Value.Int ds.Snb.Gen.person_ids.(0) in
  let rows, _ =
    Core.query db ~mode:Engine.Interp ~params:[| param |]
      (SR.is2 sc ~access:`Index ~msg:`Post)
  in
  Alcotest.(check bool) "is2 <= 10" true (List.length rows <= 10)

let test_sr_adaptive_equals_interp () =
  let db, ds = mk_indexed ~sf:0.1 () in
  Core.set_workers db 3;
  let rng = Random.State.make [| 9 |] in
  let config =
    { Engine.default_config with prop_tag = Snb.Schema.prop_tag ds.Snb.Gen.schema }
  in
  let specs = SR.all ds.Snb.Gen.schema in
  List.iter
    (fun spec ->
      let param = SR.draw_param ds rng spec in
      let interp = run_spec db ds spec ~access:`Scan ~mode:Engine.Interp param in
      let adaptive =
        List.concat_map
          (fun plan ->
            fst
              (Core.query db ~mode:Engine.Adaptive ~config ~parallel:true
                 ~params:[| param |] plan))
          (spec.SR.plans ~access:`Scan)
      in
      Alcotest.(check bool)
        (Printf.sprintf "SR%s adaptive==interp" spec.SR.name)
        true
        (norm interp = norm adaptive))
    specs;
  Core.shutdown db

let test_complex_reads_cross_engine () =
  let db, ds = mk_indexed ~sf:0.1 () in
  let sc = ds.Snb.Gen.schema in
  let config =
    { Engine.default_config with prop_tag = Snb.Schema.prop_tag sc }
  in
  let rng = Random.State.make [| 21 |] in
  List.iter
    (fun spec ->
      for _ = 1 to 3 do
        let params = Snb.Complex_reads.draw_params ds rng spec in
        let base = ref None in
        List.iter
          (fun (mode, access) ->
            let rows, report =
              Core.query db ~mode ~config ~params (spec.Snb.Complex_reads.plan ~access)
            in
            (match mode with
            | Engine.Jit ->
                Alcotest.(check bool)
                  (spec.Snb.Complex_reads.name ^ " compiles")
                  false report.Engine.fell_back
            | _ -> ());
            match !base with
            | None -> base := Some (norm rows)
            | Some expected ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s consistent" spec.Snb.Complex_reads.name
                     (Fmt.to_to_string Engine.pp_mode mode))
                  true
                  (norm rows = expected))
          [
            (Engine.Interp, `Index);
            (Engine.Interp, `Scan);
            (Engine.Jit, `Index);
            (Engine.Jit, `Scan);
          ]
      done)
    (Snb.Complex_reads.all sc)

(* --- Updates ----------------------------------------------------------------------- *)

let test_iu_all_execute_and_commit () =
  let db, ds = mk_indexed () in
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| 11 |] in
  let ctx = IU.make_ctx () in
  let n0 = Core.node_count db and r0 = Core.rel_count db in
  List.iter
    (fun spec ->
      let params = spec.IU.draw ds rng ctx in
      let rows, _report, commit_ns =
        Core.execute_update db ~mode:Engine.Interp ~params (spec.IU.plan sc)
      in
      Alcotest.(check int) (Printf.sprintf "IU%s one row" spec.IU.name) 1
        (List.length rows);
      Alcotest.(check bool)
        (Printf.sprintf "IU%s commit charged" spec.IU.name)
        true (commit_ns > 0))
    IU.all;
  Alcotest.(check bool) "nodes grew" true (Core.node_count db > n0);
  Alcotest.(check bool) "rels grew" true (Core.rel_count db > r0)

let test_iu_jit_equals_interp_effects () =
  (* run IU6 (add post) via JIT; the post must exist afterwards and be
     findable through the maintained index *)
  let db, ds = mk_indexed () in
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| 12 |] in
  let ctx = IU.make_ctx () in
  let spec = List.nth IU.all 5 in
  Alcotest.(check string) "spec is IU6" "6" spec.IU.name;
  let params = spec.IU.draw ds rng ctx in
  let new_id = match params.(0) with Value.Int i -> i | _ -> assert false in
  let rows, report, _ =
    Core.execute_update db ~mode:Engine.Jit ~params (spec.IU.plan sc)
  in
  Alcotest.(check bool) "no fallback" false report.Engine.fell_back;
  Alcotest.(check int) "one row" 1 (List.length rows);
  (* the new post is reachable via the index under a fresh snapshot *)
  let rows, _ =
    Core.query db ~mode:Engine.Interp ~params:[| Value.Int new_id |]
      (SR.is4 sc ~access:`Index ~msg:`Post)
  in
  Alcotest.(check int) "new post indexed + visible" 1 (List.length rows)

let test_iu_visible_after_commit () =
  let db, ds = mk_indexed () in
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| 13 |] in
  let ctx = IU.make_ctx () in
  (* IU8: friendship between two persons *)
  let spec = List.nth IU.all 7 in
  let params = spec.IU.draw ds rng ctx in
  let p0 = match params.(0) with Value.Int i -> i | _ -> assert false in
  let before =
    let rows, _ =
      Core.query db ~mode:Engine.Interp ~params:[| Value.Int p0 |]
        (List.hd (SR.is3 sc ~access:`Index))
    in
    List.length rows
  in
  ignore (Core.execute_update db ~params (spec.IU.plan sc));
  let after =
    let rows, _ =
      Core.query db ~mode:Engine.Interp ~params:[| Value.Int p0 |]
        (List.hd (SR.is3 sc ~access:`Index))
    in
    List.length rows
  in
  Alcotest.(check int) "one more friend" (before + 1) after

let test_index_maintenance_on_update_and_delete () =
  let db, ds = mk_indexed () in
  let sc = ds.Snb.Gen.schema in
  ignore sc;
  let person = ds.Snb.Gen.persons.(3) in
  let old_id = ds.Snb.Gen.person_ids.(3) in
  let idx =
    Option.get
      (Core.index_lookup_fn db ~label:(Core.code db "Person")
         ~key:(Core.code db "id"))
  in
  (* change the indexed property: the entry must move *)
  Core.with_txn db (fun txn ->
      Core.set_node_prop db txn person ~key:"id" (Value.Int 777_777));
  Alcotest.(check (list int)) "old key gone" []
    (Gindex.Index.lookup idx (Value.Int old_id));
  Alcotest.(check (list int)) "new key present" [ person ]
    (Gindex.Index.lookup idx (Value.Int 777_777));
  (* create a standalone person, then delete it: entry removed *)
  let p =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"Person" ~props:[ ("id", Value.Int 888_888) ])
  in
  Alcotest.(check (list int)) "insert indexed" [ p ]
    (Gindex.Index.lookup idx (Value.Int 888_888));
  Core.with_txn db (fun txn -> Core.delete_node db txn p);
  Alcotest.(check (list int)) "delete de-indexed" []
    (Gindex.Index.lookup idx (Value.Int 888_888))

(* --- Crash recovery end-to-end -------------------------------------------------------- *)

let test_crash_recovery_end_to_end () =
  let db, ds = mk_indexed () in
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| 14 |] in
  let ctx = IU.make_ctx () in
  (* commit a few updates *)
  List.iter
    (fun spec ->
      let params = spec.IU.draw ds rng ctx in
      ignore (Core.execute_update db ~params (spec.IU.plan sc)))
    IU.all;
  let param = Value.Int ds.Snb.Gen.person_ids.(5) in
  let expected, _ =
    Core.query db ~mode:Engine.Interp ~params:[| param |] (SR.is1 sc ~access:`Index)
  in
  let nodes_before = Core.node_count db in
  (* crash with random eviction, then reopen *)
  Core.crash ~evict_prob:0.5 db;
  let db = Core.reopen db in
  Alcotest.(check int) "nodes durable" nodes_before (Core.node_count db);
  let actual, _ =
    Core.query db ~mode:Engine.Interp ~params:[| param |] (SR.is1 sc ~access:`Index)
  in
  Alcotest.(check bool) "is1 stable across recovery" true
    (norm expected = norm actual);
  (* the JIT cache also survived: a compiled query hits *)
  let _, r1 = Core.query db ~mode:Engine.Jit ~params:[| param |] (SR.is1 sc ~access:`Index) in
  let _, r2 = Core.query db ~mode:Engine.Jit ~params:[| param |] (SR.is1 sc ~access:`Index) in
  ignore r1;
  Alcotest.(check bool) "jit cache hit after recovery" true r2.Engine.cache_hit

let test_uncommitted_update_lost_on_crash () =
  let db, ds = mk_indexed () in
  let sc = ds.Snb.Gen.schema in
  let nodes_before = Core.node_count db in
  (* start an update transaction but crash before commit *)
  let txn = Core.begin_txn db in
  let g = Core.source db txn in
  let rng = Random.State.make [| 15 |] in
  let ctx = IU.make_ctx () in
  let spec = List.hd IU.all in
  let params = spec.IU.draw ds rng ctx in
  ignore (Query.Interp.run g ~params (spec.IU.plan sc));
  Core.crash ~evict_prob:1.0 db;
  let db = Core.reopen db in
  Alcotest.(check int) "uncommitted insert reclaimed" nodes_before
    (Core.node_count db)

(* --- Disk baseline --------------------------------------------------------------------- *)

let test_disk_baseline_matches_pmem () =
  (* generate the same dataset in a disk instance and in a pmem instance;
     every SR query must return identical rows *)
  let db, ds = mk_indexed () in
  let disk = Diskdb.Disk_graph.create () in
  let dds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = 0.05 }
      (Diskdb.Disk_graph.store disk)
  in
  let didx = Snb.Gen.build_indexes ~placement:Gindex.Node_store.Volatile dds in
  let rng = Random.State.make [| 16 |] in
  List.iter
    (fun spec ->
      let param = SR.draw_param ds rng spec in
      let expected = run_spec db ds spec ~access:`Index ~mode:Engine.Interp param in
      let actual =
        Mvto.with_txn (Diskdb.Disk_graph.mgr disk) (fun txn ->
            let g =
              Diskdb.Disk_graph.source
                ~indexes:(Snb.Gen.index_lookup_fn dds didx)
                disk txn
            in
            List.concat_map
              (fun plan -> Query.Interp.run g ~params:[| param |] plan)
              (spec.SR.plans ~access:`Index))
      in
      Alcotest.(check bool)
        (Printf.sprintf "SR%s disk==pmem" spec.SR.name)
        true
        (norm expected = norm actual))
    (SR.all ds.Snb.Gen.schema)

let test_disk_cold_slower_than_hot () =
  let disk = Diskdb.Disk_graph.create () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = 0.05 }
      (Diskdb.Disk_graph.store disk)
  in
  let idx = Snb.Gen.build_indexes ~placement:Gindex.Node_store.Volatile ds in
  let sc = ds.Snb.Gen.schema in
  let media = Diskdb.Disk_graph.media disk in
  let run_once param =
    Mvto.with_txn (Diskdb.Disk_graph.mgr disk) (fun txn ->
        let g =
          Diskdb.Disk_graph.source ~indexes:(Snb.Gen.index_lookup_fn ds idx) disk txn
        in
        ignore (Query.Interp.run g ~params:[| param |] (SR.is1 sc ~access:`Index)))
  in
  let param = Value.Int ds.Snb.Gen.person_ids.(7) in
  Diskdb.Disk_graph.drop_caches disk;
  let c0 = Pmem.Media.clock media in
  run_once param;
  let cold = Pmem.Media.clock media - c0 in
  let c1 = Pmem.Media.clock media in
  run_once param;
  let hot = Pmem.Media.clock media - c1 in
  Alcotest.(check bool)
    (Printf.sprintf "cold %dns > hot %dns" cold hot)
    true (cold > hot)

let () =
  Alcotest.run "system"
    [
      ( "generator",
        [
          Alcotest.test_case "shape" `Quick test_generator_shape;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        ] );
      ( "short-reads",
        [
          Alcotest.test_case "scan == index" `Slow test_sr_scan_equals_index;
          Alcotest.test_case "jit == interp" `Slow test_sr_jit_equals_interp;
          Alcotest.test_case "sanity" `Quick test_sr_sanity;
          Alcotest.test_case "adaptive == interp" `Slow test_sr_adaptive_equals_interp;
          Alcotest.test_case "complex reads cross-engine" `Slow
            test_complex_reads_cross_engine;
        ] );
      ( "updates",
        [
          Alcotest.test_case "all execute and commit" `Quick
            test_iu_all_execute_and_commit;
          Alcotest.test_case "jit effects" `Quick test_iu_jit_equals_interp_effects;
          Alcotest.test_case "visible after commit" `Quick test_iu_visible_after_commit;
          Alcotest.test_case "index maintenance update/delete" `Quick
            test_index_maintenance_on_update_and_delete;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "end to end" `Quick test_crash_recovery_end_to_end;
          Alcotest.test_case "uncommitted lost" `Quick
            test_uncommitted_update_lost_on_crash;
        ] );
      ( "disk-baseline",
        [
          Alcotest.test_case "matches pmem" `Slow test_disk_baseline_matches_pmem;
          Alcotest.test_case "cold slower than hot" `Quick test_disk_cold_slower_than_hot;
        ] );
    ]
