(* Crash-storm tests: random transactional workloads interrupted by power
   failures (with random cache-line eviction) at arbitrary points,
   followed by recovery and full invariant checking.

   The invariants checked after every recovery:
   I1  every transaction reported committed before the crash is fully
       visible (all its effects), and no uncommitted effect is;
   I2  no record slot is leaked into visibility: every live node/rel is
       one we committed;
   I3  adjacency lists are structurally sound (every reachable rel id is
       live and points back to live endpoints);
   I4  all secondary indexes agree with a full table scan after recovery;
   I5  the engine remains fully operational (insert/query/commit). *)

module Value = Storage.Value
module G = Storage.Graph_store
module Mvto = Mvcc.Mvto

type model = {
  mutable nodes : (int * int) list; (* node id, expected "v" prop *)
  mutable rels : (int * int * int) list; (* rel id, src, dst *)
}

let check_invariants db (m : model) =
  let g = Core.store db in
  (* I1/I2 for nodes *)
  Core.with_txn db (fun txn ->
      List.iter
        (fun (id, v) ->
          match Core.node_prop db txn id ~key:"v" with
          | Some (Value.Int v') when v' = v -> ()
          | other ->
              Alcotest.failf "node %d: expected v=%d got %s" id v
                (match other with
                | Some x -> Value.to_string x
                | None -> "missing"))
        m.nodes;
      let live = ref 0 in
      Mvto.scan_nodes (Core.mgr db) txn (fun _ -> incr live);
      Alcotest.(check int) "no ghost nodes" (List.length m.nodes) !live;
      (* I3: adjacency soundness *)
      List.iter
        (fun (id, _) ->
          G.iter_out g id (fun rid ->
              if not (G.rel_live g rid) then
                Alcotest.failf "dangling rel %d in out-list of %d" rid id;
              let r = G.read_rel g rid in
              if not (G.node_live g r.Storage.Layout.src) then
                Alcotest.failf "rel %d has dead src" rid;
              if not (G.node_live g r.Storage.Layout.dst) then
                Alcotest.failf "rel %d has dead dst" rid))
        m.nodes;
      List.iter
        (fun (rid, src, dst) ->
          if not (G.rel_live g rid) then Alcotest.failf "committed rel %d lost" rid;
          let r = G.read_rel g rid in
          if r.Storage.Layout.src <> src || r.Storage.Layout.dst <> dst then
            Alcotest.failf "rel %d endpoints corrupted" rid)
        m.rels);
  (* I4: index agrees with scan *)
  (match Core.index_lookup_fn db ~label:(Core.code db "N") ~key:(Core.code db "id") with
  | None -> ()
  | Some idx ->
      List.iter
        (fun (id, _) ->
          Core.with_txn db (fun txn ->
              match Core.node_prop db txn id ~key:"id" with
              | Some (Value.Int ldbc) ->
                  if not (List.mem id (Gindex.Index.lookup idx (Value.Int ldbc)))
                  then Alcotest.failf "index lost node %d" id
              | _ -> ()))
        m.nodes);
  (* I5: still fully operational *)
  let probe =
    Core.with_txn db (fun txn -> Core.create_node db txn ~label:"Probe" ~props:[])
  in
  Core.with_txn db (fun txn -> Core.delete_node db txn probe);
  (* let GC reclaim the probe so node counts stay exact *)
  Core.with_txn db (fun _ -> ())

let run_storm ~seed ~steps ~evict () =
  let rng = Random.State.make [| seed |] in
  let db = ref (Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ()) in
  ignore (Core.create_index !db ~label:"N" ~prop:"id" ());
  let m = { nodes = []; rels = [] } in
  let next_ldbc = ref 0 in
  for _ = 1 to steps do
    match Random.State.int rng 100 with
    | r when r < 40 -> (
        (* committed insert (node, maybe + rel) *)
        let ldbc = !next_ldbc in
        incr next_ldbc;
        let v = Random.State.int rng 1000 in
        try
          let id, rel =
            Core.with_txn !db (fun txn ->
                let id =
                  Core.create_node !db txn ~label:"N"
                    ~props:[ ("id", Value.Int ldbc); ("v", Value.Int v) ]
                in
                let rel =
                  match m.nodes with
                  | (dst, _) :: _ ->
                      Some
                        ( Core.create_rel !db txn ~label:"E" ~src:id ~dst
                            ~props:[],
                          id,
                          dst )
                  | [] -> None
                in
                (id, rel))
          in
          m.nodes <- (id, v) :: m.nodes;
          match rel with
          | Some (rid, src, dst) -> m.rels <- (rid, src, dst) :: m.rels
          | None -> ()
        with Core.Abort _ -> ())
    | r when r < 55 -> (
        (* committed update *)
        match m.nodes with
        | [] -> ()
        | nodes -> (
            let i = Random.State.int rng (List.length nodes) in
            let id, _ = List.nth nodes i in
            let v = Random.State.int rng 1000 in
            try
              Core.with_txn !db (fun txn ->
                  Core.set_node_prop !db txn id ~key:"v" (Value.Int v));
              m.nodes <-
                List.map (fun (id', v') -> if id' = id then (id, v) else (id', v'))
                  m.nodes
            with Core.Abort _ -> ()))
    | r when r < 70 ->
        (* uncommitted work left in flight, then crash *)
        let txn = Core.begin_txn !db in
        (try
           ignore
             (Core.create_node !db txn ~label:"N"
                ~props:[ ("id", Value.Int 999_999); ("v", Value.Int 0) ]);
           match m.nodes with
           | (id, _) :: _ ->
               Core.set_node_prop !db txn id ~key:"v" (Value.Int (-1))
           | [] -> ()
         with Core.Abort _ -> ());
        Core.crash ~evict_prob:evict !db;
        db := Core.reopen !db;
        check_invariants !db m
    | _ ->
        (* clean crash between transactions *)
        Core.crash ~evict_prob:evict !db;
        db := Core.reopen !db;
        check_invariants !db m
  done;
  check_invariants !db m

let test_storm_no_eviction () = run_storm ~seed:1 ~steps:60 ~evict:0.0 ()
let test_storm_half_eviction () = run_storm ~seed:2 ~steps:60 ~evict:0.5 ()
let test_storm_full_eviction () = run_storm ~seed:3 ~steps:60 ~evict:1.0 ()

let test_storm_qcheck =
  QCheck.Test.make ~name:"crash storm (random seeds and eviction)" ~count:8
    QCheck.(pair (int_range 10 10_000) (int_range 0 100))
    (fun (seed, evict) ->
      run_storm ~seed ~steps:30 ~evict:(float_of_int evict /. 100.) ();
      true)

let () =
  Alcotest.run "crash"
    [
      ( "storm",
        [
          Alcotest.test_case "no eviction" `Quick test_storm_no_eviction;
          Alcotest.test_case "50% eviction" `Quick test_storm_half_eviction;
          Alcotest.test_case "100% eviction" `Quick test_storm_full_eviction;
          QCheck_alcotest.to_alcotest ~long:false test_storm_qcheck;
        ] );
    ]
