(* Tests for the B+-tree index: core algorithm against a model, duplicate
   handling, all three placements, recovery paths and cost-model shape. *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Value = Storage.Value
module NS = Gindex.Node_store
module Btree = Gindex.Btree
module Index = Gindex.Index

let mk_pool ?(size = 1 lsl 24) () =
  let media = Media.create () in
  let p = Pool.create ~kind:`Pmem ~media ~id:1 ~size () in
  Alloc.format p;
  p

let mk_tree placement =
  let pool = mk_pool () in
  let store = NS.make placement ~pool ~media:(Pool.media pool) in
  (Btree.create store, pool)

let placements = [ ("dram", NS.Volatile); ("pmem", NS.Persistent); ("hybrid", NS.Hybrid) ]

(* --- Core algorithm ----------------------------------------------------- *)

let test_insert_lookup placement () =
  let t, _ = mk_tree placement in
  for i = 0 to 999 do
    Btree.insert t (Int64.of_int ((i * 37) mod 1000)) (Int64.of_int i)
  done;
  Btree.check_invariants t;
  Alcotest.(check int) "count" 1000 (Btree.count t);
  (* every key 0..999 is present exactly once *)
  for k = 0 to 999 do
    Alcotest.(check int)
      (Printf.sprintf "key %d" k)
      1
      (List.length (Btree.lookup t (Int64.of_int k)))
  done;
  Alcotest.(check (list int) ) "absent" []
    (List.map Int64.to_int (Btree.lookup t 5000L))

let test_duplicates placement () =
  let t, _ = mk_tree placement in
  (* 200 duplicates of one key interleaved with others: they span leaves *)
  for i = 0 to 199 do
    Btree.insert t 42L (Int64.of_int i);
    Btree.insert t (Int64.of_int (1000 + i)) 0L
  done;
  Btree.check_invariants t;
  let vs = Btree.lookup t 42L in
  Alcotest.(check int) "all duplicates found" 200 (List.length vs);
  let sorted = List.sort_uniq Int64.compare vs in
  Alcotest.(check int) "distinct payloads" 200 (List.length sorted)

let test_range placement () =
  let t, _ = mk_tree placement in
  for i = 0 to 499 do
    Btree.insert t (Int64.of_int (2 * i)) (Int64.of_int i)
  done;
  let acc = ref [] in
  Btree.iter_range t ~lo:100L ~hi:120L (fun k _ -> acc := k :: !acc);
  Alcotest.(check (list int64)) "range keys"
    [ 100L; 102L; 104L; 106L; 108L; 110L; 112L; 114L; 116L; 118L; 120L ]
    (List.rev !acc);
  (* empty range *)
  let n = ref 0 in
  Btree.iter_range t ~lo:1001L ~hi:2000L (fun _ _ -> incr n);
  Alcotest.(check int) "empty range" 0 !n

let test_remove placement () =
  let t, _ = mk_tree placement in
  for i = 0 to 299 do
    Btree.insert t (Int64.of_int i) (Int64.of_int (i * 10))
  done;
  Alcotest.(check bool) "remove hit" true (Btree.remove t 150L 1500L);
  Alcotest.(check bool) "remove twice misses" false (Btree.remove t 150L 1500L);
  Alcotest.(check bool) "wrong value misses" false (Btree.remove t 151L 0L);
  Alcotest.(check int) "count" 299 (Btree.count t);
  Btree.check_invariants t;
  Alcotest.(check (list int)) "gone" []
    (List.map Int64.to_int (Btree.lookup t 150L))

let test_remove_duplicate_across_leaves placement () =
  let t, _ = mk_tree placement in
  for i = 0 to 99 do
    Btree.insert t 7L (Int64.of_int i)
  done;
  (* remove a payload that lives deep in the duplicate run *)
  Alcotest.(check bool) "found far dup" true (Btree.remove t 7L 93L);
  Alcotest.(check int) "one fewer" 99 (List.length (Btree.lookup t 7L))

let test_descending_and_ascending placement () =
  let t, _ = mk_tree placement in
  for i = 999 downto 500 do
    Btree.insert t (Int64.of_int i) 0L
  done;
  for i = 0 to 499 do
    Btree.insert t (Int64.of_int i) 0L
  done;
  Btree.check_invariants t;
  let keys = ref [] in
  Btree.iter_all t (fun k _ -> keys := k :: !keys);
  Alcotest.(check int) "all there" 1000 (List.length !keys);
  let sorted = List.rev !keys in
  Alcotest.(check bool) "in order" true
    (List.for_all2 (fun a b -> Int64.to_int a = b) sorted (List.init 1000 Fun.id))

let test_model_qcheck placement =
  QCheck.Test.make
    ~name:(Printf.sprintf "btree matches multiset model (%s)"
             (Fmt.to_to_string NS.pp_placement placement))
    ~count:30
    QCheck.(list_of_size Gen.(1 -- 300) (pair (int_range 0 50) (int_range 0 3)))
    (fun ops ->
      let t, _ = mk_tree placement in
      let model = Hashtbl.create 32 in
      List.iter
        (fun (k, op) ->
          let key = Int64.of_int k in
          if op = 0 then begin
            (* remove one occurrence if present *)
            match Hashtbl.find_opt model k with
            | Some (v :: rest) ->
                if not (Btree.remove t key (Int64.of_int v)) then
                  failwith "remove missed";
                Hashtbl.replace model k rest
            | _ ->
                if Btree.remove t key 424242L then failwith "phantom remove"
          end
          else begin
            let v = Hashtbl.hash (k, op, Hashtbl.length model) land 0xFFFF in
            Btree.insert t key (Int64.of_int v);
            let cur = Option.value ~default:[] (Hashtbl.find_opt model k) in
            Hashtbl.replace model k (v :: cur)
          end)
        ops;
      Btree.check_invariants t;
      Hashtbl.fold
        (fun k vs ok ->
          ok
          && List.sort compare (List.map Int64.to_int (Btree.lookup t (Int64.of_int k)))
             = List.sort compare vs)
        model true)

(* --- Recovery ------------------------------------------------------------ *)

let test_hybrid_recovery () =
  let pool = mk_pool () in
  let store = NS.make NS.Hybrid ~pool ~media:(Pool.media pool) in
  let t = Btree.create store in
  for i = 0 to 4999 do
    Btree.insert t (Int64.of_int i) (Int64.of_int (i * 2))
  done;
  let first_leaf = Btree.first_leaf t in
  Pool.crash pool;
  (* DRAM inner nodes are gone; rebuild them from the persistent leaves *)
  let store' = NS.make NS.Hybrid ~pool ~media:(Pool.media pool) in
  let t', nleaves = Btree.rebuild_from_leaves store' ~first_leaf in
  Alcotest.(check bool) "many leaves" true (nleaves > 100);
  Btree.check_invariants t';
  Alcotest.(check int) "count recovered" 5000 (Btree.count t');
  for i = 0 to 4999 do
    let vs = Btree.lookup t' (Int64.of_int i) in
    if vs <> [ Int64.of_int (i * 2) ] then
      Alcotest.failf "lost key %d after recovery" i
  done

let test_hybrid_unflushed_insert_lost_but_consistent () =
  let pool = mk_pool () in
  let store = NS.make NS.Hybrid ~pool ~media:(Pool.media pool) in
  let t = Btree.create store in
  for i = 0 to 999 do
    Btree.insert t (Int64.of_int i) 1L
  done;
  let first_leaf = Btree.first_leaf t in
  Pool.crash ~evict_prob:0.5 pool;
  let store' = NS.make NS.Hybrid ~pool ~media:(Pool.media pool) in
  let t', _ = Btree.rebuild_from_leaves store' ~first_leaf in
  (* whatever survived must still be a structurally valid tree *)
  Btree.check_invariants t'

let test_index_wrapper_and_catalog () =
  let pool = mk_pool () in
  let catalog = Index.Catalog.create pool ~root_slot:4 in
  let idx = Index.create pool ~placement:NS.Hybrid ~label:3 ~key:7 in
  Index.Catalog.add pool ~catalog (Index.descriptor idx);
  for i = 0 to 999 do
    Index.insert idx (Value.Int i) i
  done;
  Alcotest.(check (list int)) "lookup" [ 123 ] (Index.lookup idx (Value.Int 123));
  Pool.crash pool;
  let catalog' = Index.Catalog.attach pool ~root_slot:4 in
  (match Index.Catalog.list pool ~catalog:catalog' with
  | [ desc ] ->
      let idx' = Index.open_ pool ~desc ~rebuild:(fun _ -> ()) in
      Alcotest.(check int) "label code" 3 (Index.label_code idx');
      Alcotest.(check int) "key code" 7 (Index.key_code idx');
      Alcotest.(check (list int)) "lookup after recovery" [ 123 ]
        (Index.lookup idx' (Value.Int 123));
      Alcotest.(check int) "count after recovery" 1000 (Index.count idx')
  | l -> Alcotest.failf "expected 1 catalog entry, got %d" (List.length l))

let test_persistent_index_recovery () =
  let pool = mk_pool () in
  let idx = Index.create pool ~placement:NS.Persistent ~label:1 ~key:2 in
  for i = 0 to 1999 do
    Index.insert idx (Value.Int i) i
  done;
  Pool.crash pool;
  let idx' = Index.open_ pool ~desc:(Index.descriptor idx) ~rebuild:(fun _ -> ()) in
  Alcotest.(check int) "count" 2000 (Index.count idx');
  Alcotest.(check (list int)) "lookup" [ 1999 ] (Index.lookup idx' (Value.Int 1999))

let test_volatile_index_rebuild_callback () =
  let pool = mk_pool () in
  let idx = Index.create pool ~placement:NS.Volatile ~label:1 ~key:2 in
  Index.insert idx (Value.Int 1) 10;
  Pool.crash pool;
  let rebuilt = ref false in
  let idx' =
    Index.open_ pool ~desc:(Index.descriptor idx) ~rebuild:(fun fresh ->
        rebuilt := true;
        Index.insert fresh (Value.Int 1) 10)
  in
  Alcotest.(check bool) "rebuild invoked" true !rebuilt;
  Alcotest.(check (list int)) "content from rebuild" [ 10 ]
    (Index.lookup idx' (Value.Int 1))

(* --- Cost-model shape (pre-figure-8 sanity) ------------------------------ *)

let avg_lookup_cost placement n =
  let pool = mk_pool () in
  let media = Pool.media pool in
  let store = NS.make placement ~pool ~media in
  let t = Btree.create store in
  for i = 0 to n - 1 do
    Btree.insert t (Int64.of_int i) (Int64.of_int i)
  done;
  Media.reset media;
  for i = 0 to 999 do
    ignore (Btree.lookup t (Int64.of_int ((i * 7919) mod n)))
  done;
  Media.clock media / 1000

let test_lookup_cost_ordering () =
  let n = 20_000 in
  let dram = avg_lookup_cost NS.Volatile n in
  let hybrid = avg_lookup_cost NS.Hybrid n in
  let pmem = avg_lookup_cost NS.Persistent n in
  Alcotest.(check bool)
    (Printf.sprintf "dram %d < hybrid %d < pmem %d" dram hybrid pmem)
    true
    (dram < hybrid && hybrid < pmem);
  Alcotest.(check bool)
    (Printf.sprintf "hybrid at least 1.5x faster than pmem (%d vs %d)" hybrid pmem)
    true
    (pmem * 10 >= hybrid * 15)

let test_float_keys_ordered () =
  let t, _ = mk_tree NS.Volatile in
  let floats = [ -5.5; -1.0; 0.0; 0.25; 3.5; 1e6 ] in
  List.iteri (fun i f -> Btree.insert t (Value.index_key (Value.Float f)) (Int64.of_int i)) floats;
  let keys = ref [] in
  Btree.iter_all t (fun k _ -> keys := k :: !keys);
  let got = List.rev !keys in
  let expected = List.map (fun f -> Value.index_key (Value.Float f)) floats in
  Alcotest.(check bool) "float order preserved" true (got = expected)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  let per_placement mk =
    List.map (fun (name, p) -> Alcotest.test_case name `Quick (mk p)) placements
  in
  Alcotest.run "gindex"
    [
      ("insert-lookup", per_placement test_insert_lookup);
      ("duplicates", per_placement test_duplicates);
      ("range", per_placement test_range);
      ("remove", per_placement test_remove);
      ("remove-dup-across-leaves", per_placement test_remove_duplicate_across_leaves);
      ("mixed-order", per_placement test_descending_and_ascending);
      ( "model",
        qsuite (List.map (fun (_, p) -> test_model_qcheck p) placements) );
      ( "recovery",
        [
          Alcotest.test_case "hybrid rebuild from leaves" `Quick test_hybrid_recovery;
          Alcotest.test_case "hybrid crash consistency" `Quick
            test_hybrid_unflushed_insert_lost_but_consistent;
          Alcotest.test_case "index wrapper + catalog" `Quick
            test_index_wrapper_and_catalog;
          Alcotest.test_case "persistent index" `Quick test_persistent_index_recovery;
          Alcotest.test_case "volatile rebuild callback" `Quick
            test_volatile_index_rebuild_callback;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "lookup cost ordering" `Quick test_lookup_cost_ordering;
          Alcotest.test_case "float keys ordered" `Quick test_float_keys_ordered;
        ] );
    ]
