(* Tests for the push-based AOT query engine: operator semantics, morsel
   parallelism, joins, breakers and update plans. *)

module Value = Storage.Value
module A = Query.Algebra
module E = Query.Expr
module I = Query.Interp
module Mvto = Mvcc.Mvto
open Tutil

let no_params : Value.t array = [||]

let test_node_scan () =
  let env = mk_env () in
  with_source env (fun g ->
      let rows = I.run g ~params:no_params (A.NodeScan { label = Some env.person }) in
      Alcotest.(check int) "persons" (Array.length env.persons) (List.length rows);
      let all = I.run g ~params:no_params (A.NodeScan { label = None }) in
      Alcotest.(check int) "all nodes"
        (Array.length env.persons + Array.length env.posts)
        (List.length all))

let test_node_by_id () =
  let env = mk_env () in
  with_source env (fun g ->
      let plan = A.NodeById { id = E.Param 0 } in
      let rows = I.run g ~params:[| Value.Int env.persons.(3) |] plan in
      Alcotest.(check int) "one row" 1 (List.length rows);
      let rows = I.run g ~params:[| Value.Int 999_999 |] plan in
      Alcotest.(check int) "missing id" 0 (List.length rows))

let test_filter_prop () =
  let env = mk_env () in
  with_source env (fun g ->
      let plan =
        A.Filter
          {
            pred =
              E.Cmp
                ( E.Eq,
                  E.Prop { col = 0; kind = E.KNode; key = env.k_id },
                  E.Const (Value.Int 1005) );
            child = A.NodeScan { label = Some env.person };
          }
      in
      let rows = I.run g ~params:no_params plan in
      Alcotest.(check int) "exactly one" 1 (List.length rows);
      match rows with
      | [ [| Value.Int id |] ] ->
          Alcotest.(check int) "right person" env.persons.(5) id
      | _ -> Alcotest.fail "unexpected shape")

let test_expand_endpoint () =
  let env = mk_env () in
  with_source env (fun g ->
      (* friends of person 0 via out-KNOWS *)
      let plan =
        A.EndPoint
          {
            col = 1;
            which = `Dst;
            child =
              A.Expand
                {
                  col = 0;
                  dir = A.Out;
                  label = Some env.knows;
                  child = A.NodeById { id = E.Param 0 };
                };
          }
      in
      let rows = I.run g ~params:[| Value.Int env.persons.(0) |] plan in
      Alcotest.(check bool) "at least ring edge" true (List.length rows >= 1);
      (* in-direction gives the reverse neighbourhood *)
      let plan_in =
        A.Expand
          {
            col = 0;
            dir = A.In;
            label = Some env.knows;
            child = A.NodeById { id = E.Param 0 };
          }
      in
      let rows_in = I.run g ~params:[| Value.Int env.persons.(1) |] plan_in in
      Alcotest.(check bool) "incoming found" true (List.length rows_in >= 1))

let test_walk_to_root () =
  let env = mk_env () in
  with_source env (fun g ->
      let m = Array.length env.posts in
      let plan =
        A.WalkToRoot
          {
            col = 0;
            rel_label = env.reply_of;
            child = A.NodeById { id = E.Param 0 };
          }
      in
      (* from the deepest reply all the way to post 0 *)
      let rows = I.run g ~params:[| Value.Int env.posts.(m - 1) |] plan in
      (match rows with
      | [ [| _; Value.Int root |] ] ->
          Alcotest.(check int) "root post" env.posts.(0) root
      | _ -> Alcotest.fail "unexpected shape");
      (* from the root itself: stays put *)
      let rows = I.run g ~params:[| Value.Int env.posts.(0) |] plan in
      match rows with
      | [ [| _; Value.Int root |] ] -> Alcotest.(check int) "self" env.posts.(0) root
      | _ -> Alcotest.fail "unexpected shape")

let test_project_sort_limit () =
  let env = mk_env () in
  with_source env (fun g ->
      let plan =
        A.Limit
          {
            n = 5;
            child =
              A.Sort
                {
                  keys = [ (E.Col 0, `Desc) ];
                  child =
                    A.Project
                      {
                        exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_id } ];
                        child = A.NodeScan { label = Some env.person };
                      };
                };
          }
      in
      let rows = I.run g ~params:no_params plan in
      let ids = List.map (function [| Value.Int i |] -> i | _ -> -1) rows in
      let n = Array.length env.persons in
      Alcotest.(check (list int)) "top 5 ids desc"
        [ 1000 + n - 1; 1000 + n - 2; 1000 + n - 3; 1000 + n - 4; 1000 + n - 5 ]
        ids)

let test_count_distinct () =
  let env = mk_env () in
  with_source env (fun g ->
      let count_plan = A.CountAgg { child = A.NodeScan { label = Some env.post } } in
      (match I.run g ~params:no_params count_plan with
      | [ [| Value.Int c |] ] ->
          Alcotest.(check int) "count" (Array.length env.posts) c
      | _ -> Alcotest.fail "count shape");
      (* distinct over likers' ages *)
      let plan =
        A.Distinct
          {
            child =
              A.Project
                {
                  exprs = [ E.LabelOf { col = 0; kind = E.KNode } ];
                  child = A.NodeScan { label = None };
                };
          }
      in
      let rows = I.run g ~params:no_params plan in
      Alcotest.(check int) "two labels" 2 (List.length rows))

let test_group_count () =
  let env = mk_env () in
  with_source env (fun g ->
      (* group persons by age: multiplicities must sum to the population *)
      let plan =
        A.GroupCount
          {
            child =
              A.Project
                {
                  exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_age } ];
                  child = A.NodeScan { label = Some env.person };
                };
          }
      in
      let rows = I.run g ~params:no_params plan in
      let total =
        List.fold_left
          (fun acc row ->
            match row with
            | [| _; Value.Int n |] -> acc + n
            | _ -> Alcotest.fail "shape")
          0 rows
      in
      Alcotest.(check int) "multiplicities sum" (Array.length env.persons) total;
      (* groups are distinct *)
      let keys = List.map (fun r -> r.(0)) rows in
      Alcotest.(check int) "distinct groups" (List.length keys)
        (List.length (List.sort_uniq compare keys)))

let test_hash_join () =
  let env = mk_env () in
  with_source env (fun g ->
      (* join persons with themselves on age: every person matches at
         least itself *)
      let mk_side () =
        A.Project
          {
            exprs =
              [ E.Col 0; E.Prop { col = 0; kind = E.KNode; key = env.k_age } ];
            child = A.NodeScan { label = Some env.person };
          }
      in
      let plan =
        A.HashJoin
          { lkey = E.Col 1; rkey = E.Col 1; left = mk_side (); right = mk_side () }
      in
      let rows = I.run g ~params:no_params plan in
      Alcotest.(check bool) "at least n matches" true
        (List.length rows >= Array.length env.persons);
      List.iter
        (function
          | [| _; Value.Int a; _; Value.Int b |] ->
              Alcotest.(check int) "join key equal" a b
          | _ -> Alcotest.fail "shape")
        rows)

let test_nested_loop_join () =
  let env = mk_env () in
  with_source env (fun g ->
      let left = A.NodeScan { label = Some env.post } in
      let right = A.NodeScan { label = Some env.post } in
      let plan =
        A.NestedLoopJoin
          { pred = Some (E.Cmp (E.Lt, E.Col 0, E.Col 1)); left; right }
      in
      let rows = I.run g ~params:no_params plan in
      let m = Array.length env.posts in
      Alcotest.(check int) "m*(m-1)/2 pairs" (m * (m - 1) / 2) (List.length rows))

let test_parallel_matches_serial () =
  let env = mk_env ~n:200 ~m:30 () in
  let pool = Exec.Task_pool.create ~media:env.media ~nworkers:4 () in
  with_source env (fun g ->
      let plans =
        [
          A.NodeScan { label = Some env.person };
          A.Filter
            {
              pred =
                E.Cmp
                  ( E.Gt,
                    E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                    E.Const (Value.Int 40) );
              child = A.NodeScan { label = Some env.person };
            };
          A.CountAgg
            {
              child =
                A.Expand
                  {
                    col = 0;
                    dir = A.Out;
                    label = Some env.knows;
                    child = A.NodeScan { label = Some env.person };
                  };
            };
          A.Limit
            {
              n = 7;
              child =
                A.Sort
                  {
                    keys = [ (E.Col 0, `Asc) ];
                    child =
                      A.Project
                        {
                          exprs =
                            [ E.Prop { col = 0; kind = E.KNode; key = env.k_id } ];
                          child = A.NodeScan { label = Some env.person };
                        };
                  };
            };
        ]
      in
      List.iteri
        (fun i plan ->
          let serial = I.run g ~params:no_params plan in
          let parallel = I.run ~pool g ~params:no_params plan in
          check_same_rows (Printf.sprintf "plan %d" i) serial parallel)
        plans);
  Exec.Task_pool.shutdown pool

let test_index_scan () =
  let env = mk_env () in
  let pool_ = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let idx =
    Gindex.Index.create pool_ ~placement:Gindex.Node_store.Hybrid
      ~label:env.person ~key:env.k_id
  in
  Array.iteri
    (fun i id -> Gindex.Index.insert idx (Value.Int (1000 + i)) id)
    env.persons;
  let indexes ~label ~key =
    if label = env.person && key = env.k_id then Some idx else None
  in
  with_source_idx env ~indexes (fun g ->
      let plan =
        A.IndexScan { label = env.person; key = env.k_id; value = E.Param 0 }
      in
      let rows = I.run g ~params:[| Value.Int 1007 |] plan in
      (match rows with
      | [ [| Value.Int id |] ] -> Alcotest.(check int) "hit" env.persons.(7) id
      | _ -> Alcotest.fail "index scan shape");
      let range =
        A.IndexRange
          {
            label = env.person;
            key = env.k_id;
            lo = E.Const (Value.Int 1003);
            hi = E.Const (Value.Int 1006);
          }
      in
      Alcotest.(check int) "range width" 4
        (List.length (I.run g ~params:no_params range));
      (* missing index raises *)
      match
        I.run g ~params:no_params
          (A.IndexScan
             { label = env.person; key = env.k_age; value = E.Const (Value.Int 1) })
      with
      | _ -> Alcotest.fail "expected No_index"
      | exception Query.Source.No_index _ -> ())

let test_update_plans () =
  let env = mk_env () in
  (* create a node + relationship via plans, transactionally *)
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      let plan =
        A.CreateRel
          {
            label = env.likes;
            src = 1;
            dst = 0;
            props = [];
            child =
              A.CreateNode
                {
                  label = env.person;
                  props = [ (env.k_id, E.Const (Value.Int 7777)) ];
                  child = A.NodeById { id = E.Param 0 };
                };
          }
      in
      let rows = I.run g ~params:[| Value.Int env.posts.(0) |] plan in
      Alcotest.(check int) "one row through" 1 (List.length rows));
  with_source env (fun g ->
      let plan =
        A.Filter
          {
            pred =
              E.Cmp
                ( E.Eq,
                  E.Prop { col = 0; kind = E.KNode; key = env.k_id },
                  E.Const (Value.Int 7777) );
            child = A.NodeScan { label = Some env.person };
          }
      in
      Alcotest.(check int) "created person visible" 1
        (List.length (I.run g ~params:no_params plan)));
  (* set-property plan *)
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      let plan =
        A.SetNodeProp
          {
            col = 0;
            key = env.k_age;
            value = E.Const (Value.Int 99);
            child = A.NodeById { id = E.Param 0 };
          }
      in
      ignore (I.run g ~params:[| Value.Int env.persons.(2) |] plan));
  with_source env (fun g ->
      Alcotest.(check bool) "age updated" true
        (g.Query.Source.node_prop env.persons.(2) env.k_age = Some (Value.Int 99)))

let test_abort_rolls_back_plan_updates () =
  let env = mk_env () in
  (try
     Mvto.with_txn env.mgr (fun txn ->
         let g = Query.Source.of_mvcc env.mgr txn in
         let plan =
           A.CreateNode
             {
               label = env.person;
               props = [ (env.k_id, E.Const (Value.Int 8888)) ];
               child = A.Unit;
             }
         in
         ignore (I.run g ~params:no_params plan);
         failwith "force abort")
   with Failure _ -> ());
  with_source env (fun g ->
      let plan =
        A.Filter
          {
            pred =
              E.Cmp
                ( E.Eq,
                  E.Prop { col = 0; kind = E.KNode; key = env.k_id },
                  E.Const (Value.Int 8888) );
            child = A.NodeScan { label = Some env.person };
          }
      in
      Alcotest.(check int) "rolled back" 0 (List.length (I.run g ~params:no_params plan)))

let test_expr_semantics () =
  let env = mk_env () in
  with_source env (fun g ->
      let t tuple e = E.eval g ~params:[| Value.Int 5 |] tuple e in
      Alcotest.(check bool) "and" true
        (t [||] (E.And (E.Const (Value.Bool true), E.Const (Value.Bool true)))
        = Value.Bool true);
      Alcotest.(check bool) "null cmp is null" true
        (t [||] (E.Cmp (E.Eq, E.Const Value.Null, E.Const (Value.Int 1)))
        = Value.Null);
      Alcotest.(check bool) "param" true (t [||] (E.Param 0) = Value.Int 5);
      Alcotest.(check bool) "add" true
        (t [||] (E.Add (E.Const (Value.Int 2), E.Const (Value.Int 3))) = Value.Int 5);
      Alcotest.(check bool) "isnull" true
        (t [||] (E.IsNull (E.Const Value.Null)) = Value.Bool true))

let () =
  Alcotest.run "query"
    [
      ( "operators",
        [
          Alcotest.test_case "node scan" `Quick test_node_scan;
          Alcotest.test_case "node by id" `Quick test_node_by_id;
          Alcotest.test_case "filter on property" `Quick test_filter_prop;
          Alcotest.test_case "expand + endpoint" `Quick test_expand_endpoint;
          Alcotest.test_case "walk to root" `Quick test_walk_to_root;
          Alcotest.test_case "project sort limit" `Quick test_project_sort_limit;
          Alcotest.test_case "count + distinct" `Quick test_count_distinct;
          Alcotest.test_case "group count" `Quick test_group_count;
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "nested loop join" `Quick test_nested_loop_join;
          Alcotest.test_case "index scan" `Quick test_index_scan;
        ] );
      ( "parallel",
        [ Alcotest.test_case "matches serial" `Slow test_parallel_matches_serial ] );
      ( "updates",
        [
          Alcotest.test_case "create/set plans" `Quick test_update_plans;
          Alcotest.test_case "abort rolls back" `Quick
            test_abort_rolls_back_plan_updates;
        ] );
      ("expr", [ Alcotest.test_case "semantics" `Quick test_expr_semantics ]);
    ]
