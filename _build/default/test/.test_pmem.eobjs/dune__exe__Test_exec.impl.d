test/test_exec.ml: Alcotest Array Atomic Domain Exec Fun Jit List Pmem Unix
