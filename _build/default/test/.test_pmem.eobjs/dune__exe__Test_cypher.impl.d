test/test_cypher.ml: Alcotest Array Gindex Jit Lazy List Mvcc Option Printf QCheck QCheck_alcotest Query Storage Tutil
