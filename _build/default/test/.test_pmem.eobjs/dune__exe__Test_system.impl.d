test/test_system.ml: Alcotest Array Core Diskdb Fmt Gindex Jit List Mvcc Option Pmem Printf Query Random Snb Storage
