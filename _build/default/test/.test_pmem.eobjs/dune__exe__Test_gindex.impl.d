test/test_gindex.ml: Alcotest Fmt Fun Gen Gindex Hashtbl Int64 List Option Pmem Printf QCheck QCheck_alcotest Storage
