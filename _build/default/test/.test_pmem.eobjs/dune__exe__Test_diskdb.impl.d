test/test_diskdb.ml: Alcotest Diskdb List Mvcc Pmem Query Storage
