test/test_jit.ml: Alcotest Array Exec Fun Gindex Jit List Mvcc Pmem Printf QCheck QCheck_alcotest Query Storage Tutil
