test/test_gindex.mli:
