test/test_crash.ml: Alcotest Core Gindex List Mvcc QCheck QCheck_alcotest Random Storage
