test/test_pmem.ml: Alcotest Gen Int64 List Pmem Printf QCheck QCheck_alcotest Random
