test/test_query.ml: Alcotest Array Exec Gindex List Mvcc Printf Query Storage Tutil
