test/test_storage.ml: Alcotest Array Float Gen Hashtbl Int64 List Pmem Printf QCheck QCheck_alcotest Storage
