test/tutil.ml: Alcotest Array Jit List Mvcc Pmem Printf Query Storage
