test/test_mvcc.ml: Alcotest Array Atomic Domain List Mvcc Option Pmem Printf Random Storage
