test/test_ir.ml: Alcotest Array Jit List Query Storage Tutil
