(* Tests for the morsel-driven task pool and the background compiler
   service. *)

module TP = Exec.Task_pool

let test_runs_all_tasks () =
  let pool = TP.create ~nworkers:3 () in
  let hits = Atomic.make 0 in
  TP.run pool (List.init 100 (fun _ () -> Atomic.incr hits));
  Alcotest.(check int) "all tasks ran" 100 (Atomic.get hits);
  (* the pool is reusable *)
  TP.run pool (List.init 50 (fun _ () -> Atomic.incr hits));
  Alcotest.(check int) "second batch" 150 (Atomic.get hits);
  TP.shutdown pool

let test_parallelism_is_real () =
  let pool = TP.create ~nworkers:2 () in
  (* two tasks that can only finish if they run concurrently *)
  let a = Atomic.make false and b = Atomic.make false in
  let spin_until flag =
    let deadline = Unix.gettimeofday () +. 5.0 in
    while (not (Atomic.get flag)) && Unix.gettimeofday () < deadline do
      Domain.cpu_relax ()
    done;
    Atomic.get flag
  in
  TP.run pool
    [
      (fun () ->
        Atomic.set a true;
        if not (spin_until b) then failwith "no overlap");
      (fun () ->
        Atomic.set b true;
        if not (spin_until a) then failwith "no overlap");
    ];
  TP.shutdown pool

let test_exception_propagates () =
  let pool = TP.create ~nworkers:2 () in
  let ran = Atomic.make 0 in
  (match
     TP.run pool
       [
         (fun () -> Atomic.incr ran);
         (fun () -> failwith "boom");
         (fun () -> Atomic.incr ran);
       ]
   with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* the pool survives a failed batch *)
  TP.run pool [ (fun () -> Atomic.incr ran) ];
  Alcotest.(check int) "other tasks still ran" 3 (Atomic.get ran);
  TP.shutdown pool

let test_parallel_ranges () =
  let pool = TP.create ~nworkers:4 () in
  let n = 1000 in
  let seen = Array.make n false in
  TP.parallel_ranges pool ~n ~grain:37 (fun lo hi ->
      for i = lo to hi - 1 do
        if seen.(i) then failwith "overlap";
        seen.(i) <- true
      done);
  Alcotest.(check bool) "full coverage" true (Array.for_all Fun.id seen);
  TP.shutdown pool

let test_meters_attribute_work () =
  let media = Pmem.Media.create () in
  let pool = TP.create ~media ~nworkers:2 () in
  TP.run pool
    (List.init 8 (fun _ () -> Pmem.Media.charge media 1000));
  Alcotest.(check int) "all charges counted" 8000 (Pmem.Media.clock media);
  TP.shutdown pool

let test_compiler_service_runs_jobs () =
  let done_ = Atomic.make 0 in
  for _ = 1 to 5 do
    Jit.Compiler_service.submit (fun () -> Atomic.incr done_)
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get done_ < 5 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "all jobs executed" 5 (Atomic.get done_);
  Alcotest.(check int) "queue drained" 0 (Jit.Compiler_service.pending ())

let test_compiler_service_survives_job_exception () =
  let ok = Atomic.make false in
  Jit.Compiler_service.submit (fun () -> failwith "compiler job boom");
  Jit.Compiler_service.submit (fun () -> Atomic.set ok true);
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get ok)) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "service alive after exception" true (Atomic.get ok)

let () =
  Alcotest.run "exec"
    [
      ( "task-pool",
        [
          Alcotest.test_case "runs all tasks" `Quick test_runs_all_tasks;
          Alcotest.test_case "parallelism is real" `Quick test_parallelism_is_real;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "parallel ranges" `Quick test_parallel_ranges;
          Alcotest.test_case "meters attribute work" `Quick test_meters_attribute_work;
        ] );
      ( "compiler-service",
        [
          Alcotest.test_case "runs jobs" `Quick test_compiler_service_runs_jobs;
          Alcotest.test_case "survives exceptions" `Quick
            test_compiler_service_survives_job_exception;
        ] );
    ]
