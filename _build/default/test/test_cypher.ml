(* Tests for the Cypher-like frontend: parsing, planning, equivalence
   with hand-built algebra, updates, and error reporting. *)

module Value = Storage.Value
module A = Query.Algebra
module E = Query.Expr
module I = Query.Interp
module C = Query.Cypher
module Mvto = Mvcc.Mvto
open Tutil

let run env ?params q =
  with_source env (fun g ->
      C.run g ~params:(Option.value params ~default:[||]) q)

let test_match_label () =
  let env = mk_env () in
  let rows = run env "MATCH (p:Person) RETURN p" in
  Alcotest.(check int) "all persons" (Array.length env.persons) (List.length rows)

let test_match_prop_filter () =
  let env = mk_env () in
  let rows = run env "MATCH (p:Person {id: 1005}) RETURN p.name" in
  match rows with
  | [ [| Value.Str c |] ] ->
      with_source env (fun g ->
          Alcotest.(check string) "name" "p005" (g.Query.Source.decode c))
  | _ -> Alcotest.fail "expected one name"

let test_match_param () =
  let env = mk_env () in
  let rows =
    run env ~params:[| Value.Int 1007 |] "MATCH (p:Person {id: $0}) RETURN p.id"
  in
  Alcotest.(check bool) "id round trip" true (rows = [ [| Value.Int 1007 |] ])

let test_hop_and_where () =
  let env = mk_env () in
  let cypher =
    run env
      "MATCH (p:Person {id: 1000})-[:KNOWS]->(f:Person) WHERE f.age >= 20 \
       RETURN f.id ORDER BY f.id ASC"
  in
  (* equivalent hand-built plan *)
  let manual =
    with_source env (fun g ->
        let plan =
          A.Project
            {
              exprs = [ E.Prop { col = 2; kind = E.KNode; key = env.k_id } ];
              child =
                A.Sort
                  {
                    keys =
                      [ (E.Prop { col = 2; kind = E.KNode; key = env.k_id }, `Asc) ];
                    child =
                      A.Filter
                        {
                          pred =
                            E.Cmp
                              ( E.Ge,
                                E.Prop { col = 2; kind = E.KNode; key = env.k_age },
                                E.Const (Value.Int 20) );
                          child =
                            A.Filter
                              {
                                pred =
                                  E.Cmp
                                    ( E.Eq,
                                      E.LabelOf { col = 2; kind = E.KNode },
                                      E.Const (Value.Str env.person) );
                                child =
                                  A.EndPoint
                                    {
                                      col = 1;
                                      which = `Dst;
                                      child =
                                        A.Expand
                                          {
                                            col = 0;
                                            dir = A.Out;
                                            label = Some env.knows;
                                            child =
                                              A.Filter
                                                {
                                                  pred =
                                                    E.Cmp
                                                      ( E.Eq,
                                                        E.Prop
                                                          {
                                                            col = 0;
                                                            kind = E.KNode;
                                                            key = env.k_id;
                                                          },
                                                        E.Const (Value.Int 1000) );
                                                  child =
                                                    A.NodeScan
                                                      { label = Some env.person };
                                                };
                                          };
                                    };
                              };
                        };
                  };
            }
        in
        I.run g ~params:[||] plan)
  in
  (* sort direction handled inside both; compare ordered *)
  Alcotest.(check bool)
    (Printf.sprintf "cypher == manual (%d rows)" (List.length cypher))
    true (cypher <> [] && cypher = manual)

let test_incoming_hop () =
  let env = mk_env () in
  let rows =
    run env "MATCH (p:Person {id: 1001})<-[:KNOWS]-(f) RETURN count(*)"
  in
  match rows with
  | [ [| Value.Int n |] ] -> Alcotest.(check bool) "has incoming" true (n >= 1)
  | _ -> Alcotest.fail "count shape"

let test_two_hops () =
  let env = mk_env () in
  let rows =
    run env
      "MATCH (p:Person {id: 1000})-[:KNOWS]->(f)-[:KNOWS]->(ff) RETURN DISTINCT ff.id"
  in
  Alcotest.(check bool) "friends of friends" true (List.length rows >= 1)

let test_order_limit () =
  let env = mk_env () in
  let rows =
    run env "MATCH (p:Person) RETURN p.id ORDER BY p.id DESC LIMIT 3"
  in
  let ids = List.map (function [| Value.Int i |] -> i | _ -> -1) rows in
  let n = Array.length env.persons in
  Alcotest.(check (list int)) "top3 desc" [ 999 + n; 998 + n; 997 + n ] ids

let test_count_star () =
  let env = mk_env () in
  match run env "MATCH (p:Post) RETURN count(*)" with
  | [ [| Value.Int n |] ] ->
      Alcotest.(check int) "post count" (Array.length env.posts) n
  | _ -> Alcotest.fail "count shape"

let test_create_node () =
  let env = mk_env () in
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      ignore (C.run g ~params:[||] "CREATE (x:Person {id: 4242, age: 18})"));
  let rows = run env "MATCH (p:Person {id: 4242}) RETURN p.age" in
  Alcotest.(check bool) "created" true (rows = [ [| Value.Int 18 |] ])

let test_create_rel_between_lookups () =
  let env = mk_env () in
  (* needs indexes for the AttachByIndex of the second pattern *)
  let pool = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let idx =
    Gindex.Index.create pool ~placement:Gindex.Node_store.Hybrid ~label:env.person
      ~key:env.k_id
  in
  Array.iteri (fun i id -> Gindex.Index.insert idx (Value.Int (1000 + i)) id) env.persons;
  let indexes ~label ~key =
    if label = env.person && key = env.k_id then Some idx else None
  in
  let indexed ~label ~key = label = env.person && key = env.k_id in
  let before =
    with_source env (fun g ->
        List.length
          (C.run g ~params:[||]
             "MATCH (a:Person {id: 1003})-[:KNOWS]->(b) RETURN b"))
  in
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc ~indexes env.mgr txn in
      let rows =
        C.run ~indexed g ~params:[||]
          "MATCH (a:Person {id: 1003}), (b:Person {id: 1009}) CREATE \
           (a)-[:KNOWS {since: 2024}]->(b)"
      in
      Alcotest.(check int) "one row through" 1 (List.length rows));
  let after =
    with_source env (fun g ->
        List.length
          (C.run g ~params:[||]
             "MATCH (a:Person {id: 1003})-[:KNOWS]->(b) RETURN b"))
  in
  Alcotest.(check int) "one more friend" (before + 1) after

let test_set_and_delete () =
  let env = mk_env () in
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      ignore (C.run g ~params:[||] "MATCH (p:Person {id: 1002}) SET p.age = 99"));
  let rows = run env "MATCH (p:Person {id: 1002}) RETURN p.age" in
  Alcotest.(check bool) "set applied" true (rows = [ [| Value.Int 99 |] ]);
  (* delete a fresh, unconnected node *)
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      ignore (C.run g ~params:[||] "CREATE (x:Person {id: 5555})"));
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      ignore (C.run g ~params:[||] "MATCH (p:Person {id: 5555}) DETACH DELETE p"));
  let rows = run env "MATCH (p:Person {id: 5555}) RETURN p" in
  Alcotest.(check int) "deleted" 0 (List.length rows)

let test_cypher_jit_equivalence () =
  let env = mk_env () in
  let queries =
    [
      "MATCH (p:Person) RETURN p.id";
      "MATCH (p:Person {id: 1004})-[:KNOWS]->(f) RETURN f.id, f.age";
      "MATCH (p:Person) WHERE p.age > 40 RETURN p.id";
    ]
  in
  with_source env (fun g ->
      List.iter
        (fun q ->
          let plan = C.compile g q in
          let interp, _ =
            Jit.Engine.run ~mode:Jit.Engine.Interp g ~params:[||] plan
          in
          let jit, report = Jit.Engine.run ~mode:Jit.Engine.Jit g ~params:[||] plan in
          Alcotest.(check bool) (q ^ " no fallback") false report.Jit.Engine.fell_back;
          check_same_rows q interp jit)
        queries)

let test_parse_errors () =
  let env = mk_env () in
  List.iter
    (fun q ->
      match run env q with
      | _ -> Alcotest.failf "expected parse error for %S" q
      | exception C.Parse_error _ -> ())
    [
      "MATCH (p:Person RETURN p";
      "MATCH (p)-[:]->(q) RETURN p";
      "RETURN";
      "MATCH (p) WHERE p. RETURN p";
      "MATCH (p) LIMIT x";
      "MATCH (p:Person {id 5}) RETURN p";
    ]

let test_unbound_variable () =
  let env = mk_env () in
  match run env "MATCH (p:Person) RETURN q.id" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception C.Parse_error _ -> ()

let test_detach_delete_cascades () =
  let env = mk_env () in
  let g0 = Mvto.store env.mgr in
  let rels_before = Storage.Graph_store.rel_count g0 in
  (* person 1004 has at least its ring KNOWS edge; detach-delete it *)
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      ignore (C.run g ~params:[||] "MATCH (p:Person {id: 1004}) DETACH DELETE p"));
  (* the node is gone and no dangling edges remain visible *)
  let rows = run env "MATCH (p:Person {id: 1004}) RETURN p" in
  Alcotest.(check int) "node gone" 0 (List.length rows);
  with_source env (fun g ->
      g.Query.Source.scan_rels (fun rid ->
          let src = g.Query.Source.rel_src rid
          and dst = g.Query.Source.rel_dst rid in
          if src = env.persons.(4) || dst = env.persons.(4) then
            Alcotest.failf "dangling visible rel %d" rid));
  (* GC physically reclaims node + rels once no snapshot needs them *)
  Mvto.with_txn env.mgr (fun _ -> ());
  Alcotest.(check bool) "slot reclaimed" false
    (Storage.Graph_store.node_live g0 env.persons.(4));
  Alcotest.(check bool) "rels reclaimed" true
    (Storage.Graph_store.rel_count g0 < rels_before)

let fuzz_env = lazy (mk_env ~n:6 ~m:2 ())

let test_fuzz_never_crashes =
  QCheck.Test.make ~name:"lexer/parser total: Parse_error or plan, no crash"
    ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 60) QCheck.Gen.printable)
    (fun s ->
      let env = Lazy.force fuzz_env in
      with_source env (fun g ->
          match Query.Cypher.compile g s with
          | (_ : A.plan) -> true
          | exception Query.Cypher.Parse_error _ -> true))

let () =
  Alcotest.run "cypher"
    [
      ( "read",
        [
          Alcotest.test_case "match label" `Quick test_match_label;
          Alcotest.test_case "prop filter" `Quick test_match_prop_filter;
          Alcotest.test_case "parameter" `Quick test_match_param;
          Alcotest.test_case "hop + where == manual" `Quick test_hop_and_where;
          Alcotest.test_case "incoming hop" `Quick test_incoming_hop;
          Alcotest.test_case "two hops distinct" `Quick test_two_hops;
          Alcotest.test_case "order + limit" `Quick test_order_limit;
          Alcotest.test_case "count(*)" `Quick test_count_star;
        ] );
      ( "write",
        [
          Alcotest.test_case "create node" `Quick test_create_node;
          Alcotest.test_case "create rel between lookups" `Quick
            test_create_rel_between_lookups;
          Alcotest.test_case "set + delete" `Quick test_set_and_delete;
          Alcotest.test_case "detach delete cascades" `Quick
            test_detach_delete_cascades;
        ] );
      ( "engine",
        [ Alcotest.test_case "jit equivalence" `Quick test_cypher_jit_equivalence ] );
      ( "errors",
        [
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
          QCheck_alcotest.to_alcotest ~long:false test_fuzz_never_crashes;
        ] );
    ]
