(* Shared helpers for query/JIT/engine tests: a small deterministic social
   graph served through the MVCC source. *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Value = Storage.Value
module G = Storage.Graph_store
module Mvto = Mvcc.Mvto
module A = Query.Algebra
module E = Query.Expr

type env = {
  mgr : Mvto.t;
  media : Media.t;
  person : int; (* label codes *)
  post : int;
  knows : int;
  likes : int;
  reply_of : int;
  k_name : int; (* property key codes *)
  k_age : int;
  k_id : int;
  persons : int array;
  posts : int array;
}

(* [n] persons in a ring of KNOWS edges plus a few random extra edges;
   [m] posts each liked by a few persons; a reply chain hanging off post 0. *)
let mk_env ?(kind = `Pmem) ?(n = 40) ?(m = 12) ?(chunk_capacity = 16) () =
  let media = Media.create () in
  let pool = Pool.create ~kind ~media ~id:1 ~size:(1 lsl 24) () in
  let g = G.format ~chunk_capacity pool in
  let mgr = Mvto.create g in
  let person = G.code g "Person" and post = G.code g "Post" in
  let knows = G.code g "KNOWS" and likes = G.code g "LIKES" in
  let reply_of = G.code g "REPLY_OF" in
  let k_name = G.code g "name"
  and k_age = G.code g "age"
  and k_id = G.code g "id" in
  let persons, posts =
    Mvto.with_txn mgr (fun txn ->
        let persons =
          Array.init n (fun i ->
              Mvto.insert_node mgr txn ~label:person
                ~props:
                  [
                    (k_name, G.encode_value g (Value.Text (Printf.sprintf "p%03d" i)));
                    (k_age, Value.Int (20 + (i mod 50)));
                    (k_id, Value.Int (1000 + i));
                  ])
        in
        let posts =
          Array.init m (fun i ->
              Mvto.insert_node mgr txn ~label:post
                ~props:[ (k_id, Value.Int (5000 + i)) ])
        in
        Array.iteri
          (fun i p ->
            ignore
              (Mvto.insert_rel mgr txn ~label:knows ~src:p
                 ~dst:persons.((i + 1) mod n) ~props:[]))
          persons;
        for i = 0 to (n / 3) - 1 do
          ignore
            (Mvto.insert_rel mgr txn ~label:knows ~src:persons.(i * 2 mod n)
               ~dst:persons.((i * 7) mod n) ~props:[])
        done;
        Array.iteri
          (fun i po ->
            for j = 0 to 2 do
              ignore
                (Mvto.insert_rel mgr txn ~label:likes
                   ~src:persons.(((i * 3) + j) mod n) ~dst:po ~props:[])
            done)
          posts;
        (* reply chain: posts.(m-1) -> ... -> posts.(1) -> posts.(0) *)
        for i = 1 to m - 1 do
          ignore
            (Mvto.insert_rel mgr txn ~label:reply_of ~src:posts.(i)
               ~dst:posts.(i - 1) ~props:[])
        done;
        (persons, posts))
  in
  { mgr; media; person; post; knows; likes; reply_of; k_name; k_age; k_id; persons; posts }

let with_source env f =
  Mvto.with_txn env.mgr (fun txn -> f (Query.Source.of_mvcc env.mgr txn))

let with_source_idx env ~indexes f =
  Mvto.with_txn env.mgr (fun txn -> f (Query.Source.of_mvcc ~indexes env.mgr txn))

(* schema type hints for the JIT: requirement (3), compile-time types *)
let prop_tag env key =
  if key = env.k_name then Jit.Ir.TagStr else Jit.Ir.TagInt

(* normalise result sets for comparison *)
let norm rows = List.sort compare (List.map Array.to_list rows)

let check_same_rows msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%d vs %d rows)" msg (List.length expected)
       (List.length actual))
    true
    (norm expected = norm actual)
