(* Tests for the storage layer: values, chunks, tables, dictionary,
   properties and the graph store, including recovery after crashes. *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Pptr = Pmem.Pptr
module Value = Storage.Value
module Layout = Storage.Layout
module Chunk = Storage.Chunk
module Table = Storage.Table
module Dict = Storage.Dict
module Props = Storage.Props
module G = Storage.Graph_store

let mk_pool ?(size = 1 lsl 24) () =
  let media = Media.create () in
  let p = Pool.create ~kind:`Pmem ~media ~id:1 ~size () in
  Alloc.format p;
  p

let mk_store ?size () = G.format (mk_pool ?size ())

(* --- Value -------------------------------------------------------------- *)

let test_value_roundtrip () =
  let vs =
    [ Value.Null; Value.Int 42; Value.Int (-7); Value.Float 3.25;
      Value.Bool true; Value.Bool false; Value.Str 17 ]
  in
  List.iter
    (fun v ->
      let v' = Value.decode ~tag:(Value.tag v) ~payload:(Value.payload v) in
      Alcotest.(check bool) (Value.to_string v) true (Value.equal v v'))
    vs

let test_value_text_rejected () =
  Alcotest.check_raises "tag on Text"
    (Invalid_argument "Value.tag: Text must be dictionary-encoded first")
    (fun () -> ignore (Value.tag (Value.Text "x")))

let test_value_index_key_order =
  QCheck.Test.make ~name:"float index keys preserve order" ~count:200
    QCheck.(pair (float_range (-1e6) 1e6) (float_range (-1e6) 1e6))
    (fun (a, b) ->
      let ka = Value.index_key (Value.Float a)
      and kb = Value.index_key (Value.Float b) in
      Int64.compare ka kb = Float.compare a b)

(* --- Chunk -------------------------------------------------------------- *)

let test_chunk_size_multiple_of_256 () =
  List.iter
    (fun (cap, rs) ->
      let b = Chunk.bytes_needed ~capacity:cap ~record_size:rs in
      Alcotest.(check int) (Printf.sprintf "cap=%d rs=%d" cap rs) 0 (b mod 256))
    [ (512, 64); (512, 80); (100, 64); (7, 80); (1, 64) ]

let test_chunk_bitmap () =
  let p = mk_pool () in
  let c = Chunk.create p ~first_id:0 ~capacity:100 ~record_size:64 in
  Alcotest.(check bool) "initially free" false (Chunk.is_used c 5);
  Chunk.set_used c 5 true;
  Chunk.set_used c 64 true;
  Alcotest.(check bool) "used" true (Chunk.is_used c 5);
  Alcotest.(check int) "count" 2 (Chunk.used_count c);
  Alcotest.(check (option int)) "find free skips used" (Some 0) (Chunk.find_free c);
  Chunk.set_used c 5 false;
  Alcotest.(check bool) "freed" false (Chunk.is_used c 5)

let test_chunk_bitmap_survives_crash () =
  let p = mk_pool () in
  let c = Chunk.create p ~first_id:0 ~capacity:64 ~record_size:64 in
  Chunk.set_used c 3 true;
  Pool.crash p;
  Alcotest.(check bool) "bitmap durable" true (Chunk.is_used c 3)

let test_chunk_full () =
  let p = mk_pool () in
  let c = Chunk.create p ~first_id:0 ~capacity:3 ~record_size:64 in
  Chunk.set_used c 0 true;
  Chunk.set_used c 1 true;
  Chunk.set_used c 2 true;
  Alcotest.(check (option int)) "full" None (Chunk.find_free c)

(* --- Table -------------------------------------------------------------- *)

let test_table_insert_lookup () =
  let p = mk_pool () in
  let t = Table.create p ~capacity:16 ~record_size:64 () in
  let id, off = Table.reserve t in
  Pool.write_i64 p off 77L;
  Pool.persist p ~off ~len:8;
  Table.publish t id;
  Alcotest.(check bool) "live" true (Table.is_live t id);
  Alcotest.(check int64) "data" 77L (Pool.read_i64 p (Table.record_off t id))

let test_table_grows_chunks () =
  let p = mk_pool () in
  let t = Table.create p ~capacity:4 ~record_size:64 () in
  for _ = 1 to 10 do
    let id, _ = Table.reserve t in
    Table.publish t id
  done;
  Alcotest.(check int) "three chunks" 3 (Table.nchunks t);
  Alcotest.(check int) "count" 10 (Table.count t)

let test_table_slot_reuse () =
  let p = mk_pool () in
  let t = Table.create p ~capacity:8 ~record_size:64 () in
  let ids = List.init 5 (fun _ -> fst (Table.reserve t)) in
  List.iter (Table.publish t) ids;
  Table.delete t (List.nth ids 2);
  let id, _ = Table.reserve t in
  Alcotest.(check int) "deleted slot reused" (List.nth ids 2) id

let test_table_recovery () =
  let p = mk_pool () in
  let t = Table.create p ~capacity:4 ~record_size:64 () in
  let ids = List.init 6 (fun _ -> fst (Table.reserve t)) in
  List.iter
    (fun id ->
      Pool.write_i64 p (Table.record_off t id) (Int64.of_int (100 + id));
      Pool.persist p ~off:(Table.record_off t id) ~len:8;
      Table.publish t id)
    ids;
  Table.delete t 1;
  Pool.crash p;
  let t' = Table.open_ p ~capacity:4 ~record_size:64 ~dir_off:(Table.dir_off t) () in
  Alcotest.(check int) "chunks recovered" 2 (Table.nchunks t');
  Alcotest.(check int) "live records" 5 (Table.count t');
  Alcotest.(check bool) "deleted stays deleted" false (Table.is_live t' 1);
  Alcotest.(check int64) "data intact" 105L (Pool.read_i64 p (Table.record_off t' 5));
  (* the recycled slot is found again *)
  let id, _ = Table.reserve t' in
  Alcotest.(check int) "slot 1 recycled" 1 id

let test_table_iter_and_chain () =
  let p = mk_pool () in
  let t = Table.create p ~capacity:4 ~record_size:64 () in
  for _ = 1 to 9 do
    let id, _ = Table.reserve t in
    Table.publish t id
  done;
  let via_mirror = ref [] and via_chain = ref [] in
  Table.iter t (fun id _ -> via_mirror := id :: !via_mirror);
  let reg = Pptr.registry_create () in
  Pptr.register reg p;
  Table.iter_via_chain t reg (fun id _ -> via_chain := id :: !via_chain);
  Alcotest.(check (list int)) "chain matches mirror" !via_mirror !via_chain

let test_table_model_qcheck =
  (* model-based: a random sequence of inserts/deletes matches a simple
     set model, including after a crash + reopen *)
  QCheck.Test.make ~name:"table matches set model across recovery" ~count:40
    QCheck.(list_of_size Gen.(1 -- 60) (QCheck.int_range 0 99))
    (fun ops ->
      let p = mk_pool () in
      let t = ref (Table.create p ~capacity:8 ~record_size:64 ()) in
      let dir = Table.dir_off !t in
      let model = Hashtbl.create 16 in
      List.iter
        (fun op ->
          if op < 70 || Hashtbl.length model = 0 then begin
            let id, _ = Table.reserve !t in
            Table.publish !t id;
            Hashtbl.replace model id ()
          end
          else begin
            let keys = Hashtbl.fold (fun k () acc -> k :: acc) model [] in
            let victim = List.nth keys (op mod List.length keys) in
            Table.delete !t victim;
            Hashtbl.remove model victim
          end;
          if op mod 13 = 0 then begin
            Pool.crash p;
            t := Table.open_ p ~capacity:8 ~record_size:64 ~dir_off:dir ()
          end)
        ops;
      let live = ref 0 in
      Table.iter !t (fun id _ ->
          incr live;
          if not (Hashtbl.mem model id) then failwith "ghost record");
      !live = Hashtbl.length model)

(* --- Dict --------------------------------------------------------------- *)

let test_dict_encode_decode () =
  let p = mk_pool () in
  let d = Dict.create p in
  let c1 = Dict.encode d "Person" in
  let c2 = Dict.encode d "KNOWS" in
  Alcotest.(check bool) "distinct codes" true (c1 <> c2);
  Alcotest.(check int) "stable" c1 (Dict.encode d "Person");
  Alcotest.(check string) "decode 1" "Person" (Dict.decode d c1);
  Alcotest.(check string) "decode 2" "KNOWS" (Dict.decode d c2);
  Alcotest.(check int) "count" 2 (Dict.count d)

let test_dict_lookup_absent () =
  let p = mk_pool () in
  let d = Dict.create p in
  Alcotest.(check (option int)) "absent" None (Dict.lookup d "nope")

let test_dict_unknown_code () =
  let p = mk_pool () in
  let d = Dict.create p in
  (match Dict.decode d 0 with
  | _ -> Alcotest.fail "expected Unknown_code"
  | exception Dict.Unknown_code _ -> ());
  match Dict.decode d 42 with
  | _ -> Alcotest.fail "expected Unknown_code"
  | exception Dict.Unknown_code _ -> ()

let test_dict_recovery () =
  let p = mk_pool () in
  let d = Dict.create p in
  let words = List.init 200 (Printf.sprintf "word-%04d") in
  let codes = List.map (Dict.encode d) words in
  Pool.crash p;
  let d' = Dict.open_ p ~hdr:(Dict.header_off d) () in
  List.iter2
    (fun w c ->
      Alcotest.(check string) ("decode " ^ w) w (Dict.decode d' c);
      Alcotest.(check (option int)) ("lookup " ^ w) (Some c) (Dict.lookup d' w))
    words codes

let test_dict_growth () =
  let p = mk_pool ~size:(1 lsl 25) () in
  let d = Dict.create p in
  (* exceed both the initial hash capacity and the initial code array *)
  let n = 3000 in
  let codes = Array.init n (fun i -> Dict.encode d (Printf.sprintf "s%06d" i)) in
  Array.iteri
    (fun i c ->
      if i mod 277 = 0 then
        Alcotest.(check string) "decode after growth" (Printf.sprintf "s%06d" i)
          (Dict.decode d c))
    codes

let test_dict_bijection_qcheck =
  QCheck.Test.make ~name:"dict is a bijection (hybrid off)" ~count:30
    QCheck.(list_of_size Gen.(1 -- 80) (string_gen_of_size Gen.(1 -- 12) Gen.printable))
    (fun words ->
      let p = mk_pool () in
      let d = Dict.create ~hybrid:false p in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun w ->
          let c = Dict.encode d w in
          match Hashtbl.find_opt tbl w with
          | Some c' when c <> c' -> failwith "code changed"
          | _ -> Hashtbl.replace tbl w c)
        words;
      Hashtbl.fold (fun w c ok -> ok && Dict.decode d c = w) tbl true)

(* --- Props -------------------------------------------------------------- *)

let test_props_set_get () =
  let p = mk_pool () in
  let ps = Props.create p () in
  let first = Props.set ps ~owner:1 ~first:0 ~key:10 (Value.Int 5) in
  let first = Props.set ps ~owner:1 ~first ~key:11 (Value.Bool true) in
  Alcotest.(check bool) "get 10" true
    (Props.get ps ~first ~key:10 = Some (Value.Int 5));
  Alcotest.(check bool) "get 11" true
    (Props.get ps ~first ~key:11 = Some (Value.Bool true));
  Alcotest.(check bool) "absent" true (Props.get ps ~first ~key:99 = None)

let test_props_update_in_place () =
  let p = mk_pool () in
  let ps = Props.create p () in
  let first = Props.set ps ~owner:1 ~first:0 ~key:10 (Value.Int 5) in
  let first' = Props.set ps ~owner:1 ~first ~key:10 (Value.Int 6) in
  Alcotest.(check int) "no new batch" first first';
  Alcotest.(check bool) "updated" true
    (Props.get ps ~first:first' ~key:10 = Some (Value.Int 6))

let test_props_overflow_chain () =
  let p = mk_pool () in
  let ps = Props.create p () in
  let first = ref 0 in
  for k = 1 to 10 do
    first := Props.set ps ~owner:1 ~first:!first ~key:k (Value.Int k)
  done;
  for k = 1 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "key %d" k)
      true
      (Props.get ps ~first:!first ~key:k = Some (Value.Int k))
  done;
  Alcotest.(check int) "all listed" 10 (List.length (Props.all ps ~first:!first))

let test_props_remove_and_reuse () =
  let p = mk_pool () in
  let ps = Props.create p () in
  let first = ref 0 in
  for k = 1 to 4 do
    first := Props.set ps ~owner:1 ~first:!first ~key:k (Value.Int k)
  done;
  Alcotest.(check bool) "removed" true (Props.remove ps ~first:!first ~key:2);
  Alcotest.(check bool) "gone" true (Props.get ps ~first:!first ~key:2 = None);
  Alcotest.(check bool) "remove absent" false (Props.remove ps ~first:!first ~key:2);
  (* the freed slot is reused without a new batch *)
  let before = !first in
  first := Props.set ps ~owner:1 ~first:!first ~key:9 (Value.Int 9);
  Alcotest.(check int) "slot reused" before !first

let test_props_free_chain () =
  let p = mk_pool () in
  let ps = Props.create p () in
  let first = ref 0 in
  for k = 1 to 10 do
    first := Props.set ps ~owner:1 ~first:!first ~key:k (Value.Int k)
  done;
  Props.free_chain ps ~first:!first;
  Alcotest.(check int) "all batches freed" 0 (Table.count (Props.table ps))

let test_props_model_qcheck =
  QCheck.Test.make ~name:"props match assoc model" ~count:50
    QCheck.(list_of_size Gen.(1 -- 50) (pair (int_range 1 12) (int_range 0 1000)))
    (fun ops ->
      let p = mk_pool () in
      let ps = Props.create p () in
      let first = ref 0 in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (k, v) ->
          if v mod 7 = 0 then begin
            ignore (Props.remove ps ~first:!first ~key:k);
            Hashtbl.remove model k
          end
          else begin
            first := Props.set ps ~owner:1 ~first:!first ~key:k (Value.Int v);
            Hashtbl.replace model k v
          end)
        ops;
      Hashtbl.fold
        (fun k v ok -> ok && Props.get ps ~first:!first ~key:k = Some (Value.Int v))
        model true
      && List.length (Props.all ps ~first:!first) = Hashtbl.length model)

(* --- Graph store -------------------------------------------------------- *)

let test_graph_create_and_read () =
  let g = mk_store () in
  let alice =
    G.create_node g ~label:"Person"
      ~props:[ ("name", Value.Text "Alice"); ("age", Value.Int 30) ]
  in
  let bob = G.create_node g ~label:"Person" ~props:[ ("name", Value.Text "Bob") ] in
  let r = G.create_rel g ~label:"KNOWS" ~src:alice ~dst:bob ~props:[] in
  Alcotest.(check int) "two nodes" 2 (G.node_count g);
  Alcotest.(check int) "one rel" 1 (G.rel_count g);
  let n = G.read_node g alice in
  Alcotest.(check string) "label" "Person" (G.string_of_code g n.Layout.label);
  let rl = G.read_rel g r in
  Alcotest.(check int) "src" alice rl.Layout.src;
  Alcotest.(check int) "dst" bob rl.Layout.dst;
  match G.node_prop g alice (G.code g "age") with
  | Some (Value.Int 30) -> ()
  | _ -> Alcotest.fail "age property"

let test_graph_adjacency () =
  let g = mk_store () in
  let hub = G.create_node g ~label:"Person" ~props:[] in
  let spokes = List.init 5 (fun _ -> G.create_node g ~label:"Person" ~props:[]) in
  let rels = List.map (fun s -> G.create_rel g ~label:"KNOWS" ~src:hub ~dst:s ~props:[]) spokes in
  let outs = ref [] in
  G.iter_out g hub (fun rid -> outs := rid :: !outs);
  Alcotest.(check (list int)) "out list (prepend order)" rels (List.rev !outs |> List.rev);
  Alcotest.(check int) "out degree" 5 (G.out_degree g hub);
  List.iter
    (fun s -> Alcotest.(check int) "in degree" 1 (G.in_degree g s))
    spokes

let test_graph_unlink_rel () =
  let g = mk_store () in
  let a = G.create_node g ~label:"P" ~props:[] in
  let b = G.create_node g ~label:"P" ~props:[] in
  let r1 = G.create_rel g ~label:"K" ~src:a ~dst:b ~props:[] in
  let r2 = G.create_rel g ~label:"K" ~src:a ~dst:b ~props:[] in
  let r3 = G.create_rel g ~label:"K" ~src:a ~dst:b ~props:[] in
  G.remove_rel g r2;
  let outs = ref [] in
  G.iter_out g a (fun rid -> outs := rid :: !outs);
  Alcotest.(check (list int)) "middle removed from out" [ r1; r3 ] !outs;
  let ins = ref [] in
  G.iter_in g b (fun rid -> ins := rid :: !ins);
  Alcotest.(check (list int)) "middle removed from in" [ r1; r3 ] !ins;
  (* removing head and tail too *)
  G.remove_rel g r3;
  G.remove_rel g r1;
  Alcotest.(check int) "empty" 0 (G.out_degree g a)

let test_graph_recovery () =
  let g = mk_store () in
  let a = G.create_node g ~label:"Person" ~props:[ ("name", Value.Text "Ada") ] in
  let b = G.create_node g ~label:"Person" ~props:[ ("name", Value.Text "Bob") ] in
  ignore (G.create_rel g ~label:"KNOWS" ~src:a ~dst:b ~props:[ ("since", Value.Int 2020) ]);
  Pool.crash (G.pool g);
  let g' = G.open_ (G.pool g) in
  Alcotest.(check int) "nodes" 2 (G.node_count g');
  Alcotest.(check int) "rels" 1 (G.rel_count g');
  (match G.node_prop g' a (G.code g' "name") with
  | Some (Value.Str c) ->
      Alcotest.(check string) "name survives" "Ada" (G.string_of_code g' c)
  | _ -> Alcotest.fail "name prop");
  Alcotest.(check int) "adjacency survives" 1 (G.out_degree g' a)

let test_graph_dram_mode () =
  let media = Media.create () in
  let p = Pool.create ~kind:`Dram ~media ~id:1 ~size:(1 lsl 24) () in
  let g = G.format p in
  let a = G.create_node g ~label:"Person" ~props:[ ("x", Value.Int 1) ] in
  Alcotest.(check bool) "readable" true (G.node_live g a);
  Alcotest.(check int) "no flushes in dram mode" 0 (Media.stats media).Media.flushes

let test_graph_pmem_cheaper_writes_than_naive () =
  (* DG1 sanity: creating a node performs a bounded number of flushes *)
  let g = mk_store () in
  let media = G.media g in
  ignore (G.create_node g ~label:"Person" ~props:[]);
  Media.reset media;
  ignore (G.create_node g ~label:"Person" ~props:[]);
  let s = Media.stats media in
  Alcotest.(check bool)
    (Printf.sprintf "flushes bounded (got %d)" s.Media.flushes)
    true
    (s.Media.flushes <= 6)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "storage"
    [
      ( "value",
        [
          Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "text rejected" `Quick test_value_text_rejected;
        ]
        @ qsuite [ test_value_index_key_order ] );
      ( "chunk",
        [
          Alcotest.test_case "256B multiple" `Quick test_chunk_size_multiple_of_256;
          Alcotest.test_case "bitmap" `Quick test_chunk_bitmap;
          Alcotest.test_case "bitmap survives crash" `Quick
            test_chunk_bitmap_survives_crash;
          Alcotest.test_case "full chunk" `Quick test_chunk_full;
        ] );
      ( "table",
        [
          Alcotest.test_case "insert lookup" `Quick test_table_insert_lookup;
          Alcotest.test_case "grows chunks" `Quick test_table_grows_chunks;
          Alcotest.test_case "slot reuse" `Quick test_table_slot_reuse;
          Alcotest.test_case "recovery" `Quick test_table_recovery;
          Alcotest.test_case "iter and chain" `Quick test_table_iter_and_chain;
        ]
        @ qsuite [ test_table_model_qcheck ] );
      ( "dict",
        [
          Alcotest.test_case "encode decode" `Quick test_dict_encode_decode;
          Alcotest.test_case "lookup absent" `Quick test_dict_lookup_absent;
          Alcotest.test_case "unknown code" `Quick test_dict_unknown_code;
          Alcotest.test_case "recovery" `Quick test_dict_recovery;
          Alcotest.test_case "growth" `Quick test_dict_growth;
        ]
        @ qsuite [ test_dict_bijection_qcheck ] );
      ( "props",
        [
          Alcotest.test_case "set get" `Quick test_props_set_get;
          Alcotest.test_case "update in place" `Quick test_props_update_in_place;
          Alcotest.test_case "overflow chain" `Quick test_props_overflow_chain;
          Alcotest.test_case "remove and reuse" `Quick test_props_remove_and_reuse;
          Alcotest.test_case "free chain" `Quick test_props_free_chain;
        ]
        @ qsuite [ test_props_model_qcheck ] );
      ( "graph_store",
        [
          Alcotest.test_case "create and read" `Quick test_graph_create_and_read;
          Alcotest.test_case "adjacency" `Quick test_graph_adjacency;
          Alcotest.test_case "unlink rel" `Quick test_graph_unlink_rel;
          Alcotest.test_case "recovery" `Quick test_graph_recovery;
          Alcotest.test_case "dram mode" `Quick test_graph_dram_mode;
          Alcotest.test_case "bounded flushes" `Quick
            test_graph_pmem_cheaper_writes_than_naive;
        ] );
    ]
